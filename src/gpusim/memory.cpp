#include "gpusim/memory.hpp"

#include <algorithm>
#include <array>

#include "common/macros.hpp"

namespace rdbs::gpusim {

MemorySim::MemorySim(const DeviceSpec& spec)
    : l2_(static_cast<std::size_t>(spec.l2_kb) * 1024, spec.l1_line_bytes,
          spec.l2_ways) {
  l1_.reserve(static_cast<std::size_t>(spec.num_sms));
  for (int sm = 0; sm < spec.num_sms; ++sm) {
    l1_.emplace_back(static_cast<std::size_t>(spec.l1_kb_per_sm) * 1024,
                     spec.l1_line_bytes, spec.l1_ways);
  }
}

std::uint64_t MemorySim::allocate(std::uint64_t bytes) {
  const std::uint64_t base = next_address_;
  next_address_ += (bytes + 127) / 128 * 128;
  return base;
}

MemorySim::AccessResult MemorySim::access(
    int sm_id, std::span<const std::uint64_t> addresses, bool cached) {
  RDBS_DCHECK(sm_id >= 0 && static_cast<std::size_t>(sm_id) < l1_.size());
  RDBS_DCHECK(addresses.size() <= 32);

  // Coalesce: collect the distinct sectors this warp instruction touches.
  // Sorting the (at most 32, mostly presorted) sector ids and deduplicating
  // adjacent entries replaces the old quadratic first-seen scan.
  std::array<std::uint64_t, 32> sectors{};
  std::size_t lanes = 0;
  for (const std::uint64_t addr : addresses) {
    sectors[lanes++] = addr / SectoredCache::kSectorBytes;
  }
  std::sort(sectors.begin(), sectors.begin() + static_cast<std::ptrdiff_t>(lanes));
  std::size_t count = 0;
  for (std::size_t i = 0; i < lanes; ++i) {
    if (count == 0 || sectors[count - 1] != sectors[i]) sectors[count++] = sectors[i];
  }

  AccessResult result;
  result.transactions = static_cast<std::uint32_t>(count);

  SectoredCache& l1 = l1_[static_cast<std::size_t>(sm_id)];
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t addr = sectors[i] * SectoredCache::kSectorBytes;
    if (cached && l1.access(addr)) {
      ++result.hits;
      continue;
    }
    // L1 miss (or an L1-bypassing atomic): probe the shared L2.
    if (l2_.access(addr)) {
      ++result.l2_hits;
    } else {
      ++result.dram_sectors;
    }
  }
  return result;
}

SectoredCache& MemorySim::l1(int sm_id) {
  RDBS_DCHECK(sm_id >= 0 && static_cast<std::size_t>(sm_id) < l1_.size());
  return l1_[static_cast<std::size_t>(sm_id)];
}

void MemorySim::reset_caches() {
  for (auto& cache : l1_) cache.reset();
  l2_.reset();
}

}  // namespace rdbs::gpusim
