// gfi — deterministic fault injection for the gpusim substrate.
//
// A production SSSP service has to survive the faults a real accelerator
// throws at it: transient DRAM bit-flips (ECC-corrected or not), kernels
// that fail to launch, kernels that hang until a watchdog kills them,
// stalled streams, and whole devices falling off the bus. The simulator
// makes those observable *and reproducible*: every fault decision is a pure
// function of a counter key
//
//     (seed, stream, per-stream launch ordinal, warp task, memory-op index)
//
// hashed through SplitMix64 — never wall-clock time, never the replay
// worker count. All decisions are taken during the serial record phase, so
// an injected fault plan is byte-identical for any `sim_threads`, and a
// failing chaos run replays exactly from its seed.
//
// Fault semantics follow the CUDA model of *asynchronous* error reporting:
// a faulted launch still executes (record-phase effects are not unwound) —
// the fault is observed at completion, the attempt's device state counts as
// poisoned, and the engine layer discards and retries the whole query (see
// core/recovery.hpp). Only ECC-correctable flips leave the attempt usable.
//
// Functional corruption is deliberately conservative so that a poisoned
// attempt can never crash or hang the host process:
//   * only floating-point loads are value-corrupted, and only mantissa bits
//     are flipped — the value stays finite, same-signed and within its
//     binade, so monotone relaxation loops still terminate;
//   * non-finite values (the ubiquitous +inf tentative distances) are left
//     untouched — a mantissa flip of inf would manufacture a NaN;
//   * integer loads (vertex ids, offsets, queue cursors) are reported as
//     uncorrectable faults but NOT value-corrupted: a corrupted index would
//     escape the simulation as an out-of-bounds host access;
//   * `max_faults` caps the number of injected events per simulator
//     lifetime, so retries eventually see a clean device and every chaos
//     test converges.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace rdbs::gpusim {

enum class FaultClass : std::uint8_t {
  kBitFlipCorrectable,    // transient flip on a load, fixed by ECC
  kBitFlipUncorrectable,  // transient flip ECC could detect but not fix
  kLaunchFailure,         // kernel never started (spurious launch error)
  kTimeout,               // kernel hung; cost-clock watchdog killed it
  kStreamStall,           // stream stopped making progress for stall_ms
  kDeviceLoss,            // device fell off the bus; latches until revive
};

const char* fault_class_name(FaultClass cls);

// One injected fault, as surfaced to the engine layer in GpuRunResult.
// `stream`/`launch` key the launch (launch ordinals are per-stream and
// 1-based); `task`/`op`/`buffer`/`bit` locate bit-flips precisely.
struct GpuFault {
  FaultClass cls = FaultClass::kBitFlipCorrectable;
  int device = 0;  // MultiGpu shard index; 0 for single-device engines
  int stream = 0;  // StreamId of the faulted launch
  std::uint64_t launch = 0;  // per-stream launch ordinal (1-based)
  std::uint32_t task = 0;    // warp task within the launch (flips only)
  std::uint64_t op = 0;      // memory-op ordinal within the launch (flips)
  std::uint32_t bit = 0;     // mantissa bit flipped (flips only)
  std::string buffer;        // device buffer hit (flips only)

  std::string describe() const;
  bool correctable() const { return cls == FaultClass::kBitFlipCorrectable; }
  // Whether this event poisons the attempt it hit (engine must discard and
  // retry). ECC-corrected flips and stream stalls are benign: the data is
  // intact, only the log/timeline record them.
  bool poisons() const {
    return cls != FaultClass::kBitFlipCorrectable &&
           cls != FaultClass::kStreamStall;
  }
};

// Fault-plan parameters. Probabilities are per draw site: `bit_flip_per_load`
// per warp load instruction, the launch-level classes per kernel launch.
struct FaultConfig {
  bool enabled = false;
  std::uint64_t seed = 0;

  double bit_flip_per_load = 0;      // P(flip) per warp load instruction
  double correctable_fraction = 0.5; // of flips, share ECC corrects

  double launch_failure = 0;  // P per launch
  double timeout = 0;         // P per launch (kernel hangs)
  double stream_stall = 0;    // P per launch (stream pauses stall_ms)
  double device_loss = 0;     // P per launch (latches device_lost)

  // Cost-clock watchdog: an injected hang is detected after watchdog_ms;
  // any kernel whose modeled time exceeds it is also killed and reported
  // as kTimeout (a genuine runaway, not an injection). 0 disables the
  // genuine check and charges DeviceSpec-independent default for hangs.
  double watchdog_ms = 25.0;
  double stall_ms = 2.0;  // stream-stall duration

  // Injection budget per simulator lifetime (correctable flips count too).
  // Bounds functional corruption so retry loops and chaos tests converge.
  std::uint64_t max_faults = 4;

  // Heterogeneous fault pressure: when hot_stream >= 0, the launch-level
  // probabilities (loss, launch failure, timeout, stall) are multiplied by
  // hot_stream_factor on that one stream — a flaky SM or a marginal memory
  // channel behind a single queue, rather than uniform background noise.
  // Bit-flip probabilities are unaffected. Policies that learn per-lane
  // cost (the serving layer's EWMAs) only have something real to learn
  // when fault pressure is uneven across lanes; this is the deterministic
  // way to make it so (bench/server_tail_latency's lane-policy gate).
  int hot_stream = -1;
  double hot_stream_factor = 1.0;
};

// Parses a `--inject-faults` spec: comma-separated key=value pairs, e.g.
//   "seed=42,flip=1e-3,ecc=0.5,launch=0.01,timeout=0.01,stall=0.01,
//    loss=0.001,watchdog=25,stall-ms=2,max=4,hot=0,hot-factor=8"
// (`hot`/`hot-factor` set FaultConfig::hot_stream{,_factor}.)
// Unknown keys or malformed values throw std::invalid_argument. The
// returned config has `enabled = true`.
FaultConfig parse_fault_spec(std::string_view spec);

// Stateless counter-based fault plan. All methods are pure functions of
// (config.seed, key); the simulator owns the mutable side (fault log,
// budget, device-lost latch).
class FaultInjector {
 public:
  explicit FaultInjector(FaultConfig config) : config_(config) {}

  const FaultConfig& config() const { return config_; }

  // Launch-level draw, keyed on (stream, per-stream launch ordinal).
  // Classes are tested in severity order (loss, launch failure, timeout,
  // stall) with independent sub-draws; at most one fires per launch.
  std::optional<FaultClass> launch_fault(int stream,
                                         std::uint64_t launch) const;

  struct FlipDecision {
    bool inject = false;
    bool correctable = false;
    std::uint32_t lane = 0;  // caller reduces mod active lanes
    std::uint32_t bit = 0;   // caller reduces mod mantissa width
  };
  // Load-level draw, keyed on (stream, launch, warp task, op ordinal).
  FlipDecision load_fault(int stream, std::uint64_t launch,
                          std::uint32_t task, std::uint64_t op) const;

 private:
  // Uniform double in [0, 1) from the counter key; `salt` separates draw
  // sites sharing a key.
  double uniform(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                 std::uint64_t d, std::uint64_t salt) const;
  std::uint64_t hash(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                     std::uint64_t d, std::uint64_t salt) const;

  FaultConfig config_;
};

}  // namespace rdbs::gpusim
