#include "gpusim/cache.hpp"

#include <algorithm>
#include <bit>

#include "common/macros.hpp"

namespace rdbs::gpusim {

SectoredCache::SectoredCache(std::size_t capacity_bytes, int line_bytes,
                             int ways)
    : line_bytes_(line_bytes), ways_(ways) {
  RDBS_CHECK(line_bytes_ >= kSectorBytes);
  RDBS_CHECK(line_bytes_ % kSectorBytes == 0);
  // The coalescing layer groups lane addresses into lines with shifts, so
  // the line size must be a power of two (every DeviceSpec uses 128).
  RDBS_CHECK(std::has_single_bit(static_cast<unsigned>(line_bytes_)));
  sectors_per_line_ = line_bytes_ / kSectorBytes;
  RDBS_CHECK(sectors_per_line_ <= 32);
  line_shift_ = std::countr_zero(static_cast<unsigned>(line_bytes_));
  const std::size_t total_lines =
      std::max<std::size_t>(static_cast<std::size_t>(ways_),
                            capacity_bytes / static_cast<std::size_t>(line_bytes_));
  num_sets_ = std::max<std::size_t>(1, total_lines / static_cast<std::size_t>(ways_));
  sets_pow2_ = std::has_single_bit(num_sets_);
  const std::size_t slots = num_sets_ * static_cast<std::size_t>(ways_);
  tags_.assign(slots, ~0ull);
  sector_masks_.assign(slots, 0);
  lru_stamps_.assign(slots, 0);
}

void SectoredCache::reset() {
  std::fill(tags_.begin(), tags_.end(), ~0ull);
  std::fill(sector_masks_.begin(), sector_masks_.end(), 0u);
  std::fill(lru_stamps_.begin(), lru_stamps_.end(), 0ull);
  tick_ = 0;
}

}  // namespace rdbs::gpusim
