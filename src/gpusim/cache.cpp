#include "gpusim/cache.hpp"

#include "common/macros.hpp"

namespace rdbs::gpusim {

SectoredCache::SectoredCache(std::size_t capacity_bytes, int line_bytes,
                             int ways)
    : line_bytes_(line_bytes), ways_(ways) {
  RDBS_CHECK(line_bytes_ >= kSectorBytes);
  RDBS_CHECK(line_bytes_ % kSectorBytes == 0);
  sectors_per_line_ = line_bytes_ / kSectorBytes;
  RDBS_CHECK(sectors_per_line_ <= 32);
  const std::size_t total_lines =
      std::max<std::size_t>(static_cast<std::size_t>(ways_),
                            capacity_bytes / static_cast<std::size_t>(line_bytes_));
  num_sets_ = std::max<std::size_t>(1, total_lines / static_cast<std::size_t>(ways_));
  lines_.assign(num_sets_ * static_cast<std::size_t>(ways_), Line{});
}

bool SectoredCache::access(std::uint64_t address) {
  const std::uint64_t line_addr = address / static_cast<std::uint64_t>(line_bytes_);
  const auto sector_in_line = static_cast<std::uint32_t>(
      (address % static_cast<std::uint64_t>(line_bytes_)) /
      static_cast<std::uint64_t>(kSectorBytes));
  const std::uint32_t sector_bit = 1u << sector_in_line;
  const std::size_t set = static_cast<std::size_t>(line_addr) % num_sets_;
  Line* set_lines = lines_.data() + set * static_cast<std::size_t>(ways_);
  ++tick_;

  // Hit path: tag present and sector valid.
  for (int w = 0; w < ways_; ++w) {
    Line& line = set_lines[w];
    if (line.tag == line_addr) {
      line.lru_stamp = tick_;
      if (line.sector_mask & sector_bit) return true;
      line.sector_mask |= sector_bit;  // sector miss within resident line
      return false;
    }
  }

  // Miss: evict the LRU way and fill just the requested sector.
  Line* victim = set_lines;
  for (int w = 1; w < ways_; ++w) {
    if (set_lines[w].lru_stamp < victim->lru_stamp) victim = &set_lines[w];
  }
  victim->tag = line_addr;
  victim->sector_mask = sector_bit;
  victim->lru_stamp = tick_;
  return false;
}

void SectoredCache::reset() {
  for (auto& line : lines_) line = Line{};
  tick_ = 0;
}

}  // namespace rdbs::gpusim
