#include "gpusim/profiler.hpp"

#include <cstdio>
#include <sstream>

namespace rdbs::gpusim {

namespace {

void row(std::ostringstream& out, const char* metric, const char* desc,
         double value, const char* unit = "") {
  char buf[160];
  std::snprintf(buf, sizeof buf, "  %-34s %-42s %14.0f %s\n", metric, desc,
                value, unit);
  out << buf;
}

void row_pct(std::ostringstream& out, const char* metric, const char* desc,
             double fraction) {
  char buf[160];
  std::snprintf(buf, sizeof buf, "  %-34s %-42s %13.2f%% \n", metric, desc,
                fraction * 100.0);
  out << buf;
}

}  // namespace

std::string profiler_report(const Counters& c, const DeviceSpec& spec) {
  std::ostringstream out;
  out << "==PROF== device " << spec.name << " (" << spec.num_sms
      << " SMs, " << spec.mem_bandwidth_gbps << " GB/s)\n";
  row(out, "inst_executed_global_loads", "Warp level instructions for global loads",
      double(c.inst_executed_global_loads));
  row(out, "inst_executed_global_stores", "Warp level instructions for global stores",
      double(c.inst_executed_global_stores));
  row(out, "inst_executed_atomics", "Warp level instructions for atom and atom cas",
      double(c.inst_executed_atomics));
  row_pct(out, "global_hit_rate", "Global hit rate in unified l1/tex",
          c.global_hit_rate());
  row_pct(out, "l2_hit_rate", "Hit rate at L2 for all requests",
          c.l2_hit_rate());
  row(out, "gld_transactions", "Global memory sector transactions",
      double(c.memory_transactions));
  row(out, "dram_read_bytes+dram_write_bytes", "Total DRAM traffic",
      double(c.dram_bytes), "B");
  row(out, "atomic_conflicts", "Same-address lane collisions",
      double(c.atomic_conflicts));
  row_pct(out, "warp_execution_efficiency", "Active lanes per issued warp op",
          c.lane_efficiency());
  row(out, "kernel_launches", "Host-side kernel launches",
      double(c.kernel_launches));
  row(out, "child_launches", "Device-side (dynamic parallelism) launches",
      double(c.child_launches));
  return out.str();
}

std::string profiler_csv_header() {
  return "label,loads,stores,atomics,l1_hit_rate,l2_hit_rate,transactions,"
         "dram_bytes,atomic_conflicts,lane_efficiency,kernel_launches,"
         "child_launches\n";
}

std::string profiler_csv_row(const std::string& label, const Counters& c) {
  std::ostringstream out;
  out << label << ',' << c.inst_executed_global_loads << ','
      << c.inst_executed_global_stores << ',' << c.inst_executed_atomics
      << ',' << c.global_hit_rate() << ',' << c.l2_hit_rate() << ','
      << c.memory_transactions << ',' << c.dram_bytes << ','
      << c.atomic_conflicts << ',' << c.lane_efficiency() << ','
      << c.kernel_launches << ',' << c.child_launches << '\n';
  return out.str();
}

}  // namespace rdbs::gpusim
