// GpuSim — a deterministic SIMT execution and cost simulator.
//
// This is the substrate that stands in for the paper's V100/T4 GPUs (see
// DESIGN.md). Algorithms are written as *warp tasks*: callables that receive
// a WarpCtx and perform warp-level instructions (ALU, coalesced loads/
// stores, atomics) on simulated device Buffers. The simulator
//
//   * executes the task functionally (real data moves, so results are
//     bit-exact and checkable against Dijkstra),
//   * records the nvprof-style counters of Fig. 10 (warp-level load/store/
//     atomic instruction counts, L1 sector hit rate), and
//   * charges cycles that capture the three effects the paper optimizes:
//     SIMT divergence (a warp pays for its slowest lane), memory coalescing
//     (cost per 32B sector, DRAM bandwidth floor), and load imbalance
//     (static block->SM assignment vs. dynamic work distribution).
//
// Kernel time = max over SMs of (per-SM issued cycles / warp schedulers,
// floored by the SM's longest single warp), then floored again by the DRAM
// bandwidth bound, plus a fixed launch overhead for host-side launches.
// Dynamic-parallelism child launches charge the cheaper child cost to the
// launching warp and their work is scheduled like any other dynamic task
// (Hyper-Q overlap).
//
// Launches carry a StreamId (default 0). Kernels on distinct streams overlap
// in simulated time under an m-slot Hyper-Q admission model
// (DeviceSpec::max_concurrent_kernels) with an aggregate device-throughput
// floor; see docs/costmodel.md, "Streams & concurrent kernels".
//
// Execution pipeline (see docs/costmodel.md, "Parallel execution &
// determinism"): each launch runs in two phases. The *record* phase executes
// task bodies serially in canonical task order — all functional effects
// (loads, stores, atomics with their `improved` flags) happen here, so
// results are independent of how the cost side is computed. Memory
// instructions append (op, lane addresses) to a per-launch trace instead of
// probing the caches. The *replay* phase then charges the trace: per-SM L1
// shards are independent and replay in parallel across host threads (OpenMP
// when built with RDBS_PARALLEL), while the shared L2 replays serially in
// canonical task order. Counters, per-launch ms and distances are therefore
// bit-identical for any worker-thread count, including 1.
//
// When no consumer needs the materialized trace (sanitizer off — the common
// engine path), the launch instead runs *fused*: every memory instruction
// charges the caches inline during the serial record phase and no trace is
// stored at all. This is bit-identical to record+replay — each SM's L1 sees
// the same probe subsequence, the shared L2 sees the same canonical-order
// request stream, and counters are order-independent integer sums — while
// skipping the trace materialization and the second pass entirely. See
// ReplayMode below; kAuto picks fused whenever it is legal.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/macros.hpp"
#include "gpusim/counters.hpp"
#include "gpusim/device.hpp"
#include "gpusim/fault.hpp"
#include "gpusim/memory.hpp"
#include "gpusim/sanitizer.hpp"
#include "gpusim/trace.hpp"

namespace rdbs::gpusim {

class GpuSim;
class KernelScope;

// Identifies a CUDA-style stream on the simulated device. Work on one stream
// is ordered; work on different streams may overlap in simulated time
// (Hyper-Q), bounded by DeviceSpec::max_concurrent_kernels and the device's
// aggregate compute/DRAM throughput. Stream 0 is the default stream; all
// pre-existing single-query call sites use it implicitly and see exactly the
// old single-timeline accounting. Streams partition *time accounting only* —
// functional execution stays serial in host call order, so results remain
// bit-identical for any sim_threads and any stream assignment.
using StreamId = int;

// A typed region of simulated device memory. Host code initializes and
// reads back through data(); device code (warp tasks) must go through
// WarpCtx so the access is costed. The *device* element size may be
// narrower than the host type (e.g. distances held as double on the host
// for exact checking but costed as 4-byte floats, matching the CUDA code).
template <typename T>
class Buffer {
 public:
  Buffer() = default;
  Buffer(std::string name, std::size_t count, std::uint32_t device_elem_bytes,
         std::uint64_t base_address)
      : name_(std::move(name)),
        data_(count),
        elem_bytes_(device_elem_bytes),
        base_(base_address) {}

  std::size_t size() const { return data_.size(); }
  std::uint64_t address_of(std::uint64_t index) const {
    return base_ + index * elem_bytes_;
  }
  const std::string& name() const { return name_; }

  // Host-side (uncosted) access for initialization and readback.
  std::vector<T>& data() { return data_; }
  const std::vector<T>& data() const { return data_; }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

 private:
  std::string name_;
  std::vector<T> data_;
  std::uint32_t elem_bytes_ = sizeof(T);
  std::uint64_t base_ = 0;
};

// Execution context of one warp inside a kernel. Functional effects are
// applied immediately (in canonical task order); the memory-cost side is
// appended to the launch trace and charged during replay.
class WarpCtx {
 public:
  int sm_id() const { return sm_id_; }

  // `instructions` warp-wide ALU/control instructions with `active_lanes`
  // lanes enabled (divergence: disabled lanes still occupy issue slots).
  void alu(std::uint32_t instructions = 1, std::uint32_t active_lanes = 32);

  // --- warp memory instructions -------------------------------------------
  // Each call is ONE warp-level instruction; `indices` lists the element
  // index accessed by each *active* lane (size <= 32; inactive lanes are
  // implicitly disabled and counted as divergence waste).
  template <typename T>
  void load(const Buffer<T>& buf, std::span<const std::uint64_t> indices,
            std::span<T> out) {
    RDBS_DCHECK(indices.size() == out.size());
    record_addresses(buf, indices);
    record_mem(TraceOp::kLoad, static_cast<std::uint32_t>(indices.size()));
    for (std::size_t i = 0; i < indices.size(); ++i) {
      out[i] = buf.data()[functional_index(buf, indices[i])];
    }
    if (fault_) maybe_flip(buf, out);
  }

  // Single-lane convenience load (a warp instruction with one active lane).
  template <typename T>
  T load_one(const Buffer<T>& buf, std::uint64_t index) {
    T value;
    const std::uint64_t idx[1] = {index};
    load(buf, idx, std::span<T>(&value, 1));
    return value;
  }

  template <typename T>
  void store(Buffer<T>& buf, std::span<const std::uint64_t> indices,
             std::span<const T> values) {
    RDBS_DCHECK(indices.size() == values.size());
    record_addresses(buf, indices);
    record_mem(TraceOp::kStore, static_cast<std::uint32_t>(indices.size()));
    for (std::size_t i = 0; i < indices.size(); ++i) {
      buf.data()[functional_index(buf, indices[i])] = values[i];
    }
  }

  template <typename T>
  void store_one(Buffer<T>& buf, std::uint64_t index, T value) {
    const std::uint64_t idx[1] = {index};
    const T val[1] = {value};
    store(buf, idx, std::span<const T>(val, 1));
  }

  // Warp-level atomicMin: lane i performs atomicMin(buf[indices[i]],
  // values[i]). Returns per-lane "improved" flags. Lanes hitting the same
  // element serialize (conflict cycles). Applied in lane order, which is a
  // legal (and deterministic) serialization of the hardware's.
  template <typename T>
  void atomic_min(Buffer<T>& buf, std::span<const std::uint64_t> indices,
                  std::span<const T> values, std::span<std::uint8_t> improved) {
    RDBS_DCHECK(indices.size() == values.size());
    RDBS_DCHECK(indices.size() == improved.size());
    record_addresses(buf, indices);
    record_mem(TraceOp::kAtomic, static_cast<std::uint32_t>(indices.size()));
    for (std::size_t i = 0; i < indices.size(); ++i) {
      T& cell = buf.data()[functional_index(buf, indices[i])];
      if (values[i] < cell) {
        cell = values[i];
        improved[i] = 1;
      } else {
        improved[i] = 0;
      }
    }
  }

  // Charges one warp atomic instruction (RMW of any flavor: exch, add, CAS)
  // on the given elements without modifying buffer contents — used when the
  // functional side effect is maintained elsewhere (queue tails, flags).
  template <typename T>
  void atomic_touch(const Buffer<T>& buf,
                    std::span<const std::uint64_t> indices) {
    record_addresses(buf, indices);
    record_mem(TraceOp::kAtomic, static_cast<std::uint32_t>(indices.size()));
  }

  // --- volatile accesses ----------------------------------------------------
  // Model the paper's `volatile` / st.cg queue traffic ("updates
  // immediately visible"): like atomics they bypass the L1 and resolve at
  // the coherence point (the shared L2), but carry no same-address
  // serialization cost. Under the sanitizer they pair safely with atomics
  // and with each other, while a *plain* store to the same address from
  // another warp is still flagged (mixed-visibility hazard).
  template <typename T>
  void volatile_load(const Buffer<T>& buf,
                     std::span<const std::uint64_t> indices,
                     std::span<T> out) {
    RDBS_DCHECK(indices.size() == out.size());
    record_addresses(buf, indices);
    record_mem(TraceOp::kVolatileLoad,
               static_cast<std::uint32_t>(indices.size()));
    for (std::size_t i = 0; i < indices.size(); ++i) {
      out[i] = buf.data()[functional_index(buf, indices[i])];
    }
    if (fault_) maybe_flip(buf, out);
  }

  template <typename T>
  void volatile_store(Buffer<T>& buf, std::span<const std::uint64_t> indices,
                      std::span<const T> values) {
    RDBS_DCHECK(indices.size() == values.size());
    record_addresses(buf, indices);
    record_mem(TraceOp::kVolatileStore,
               static_cast<std::uint32_t>(indices.size()));
    for (std::size_t i = 0; i < indices.size(); ++i) {
      buf.data()[functional_index(buf, indices[i])] = values[i];
    }
  }

  // Charges one volatile warp load/store on the given elements without a
  // data effect — the volatile counterpart of atomic_touch, for queue slot
  // traffic whose functional side is maintained host-side.
  template <typename T>
  void volatile_touch(const Buffer<T>& buf,
                      std::span<const std::uint64_t> indices, bool is_store) {
    record_addresses(buf, indices);
    record_mem(is_store ? TraceOp::kVolatileStore : TraceOp::kVolatileLoad,
               static_cast<std::uint32_t>(indices.size()));
  }

  template <typename T>
  void volatile_touch_one(const Buffer<T>& buf, std::uint64_t index,
                          bool is_store) {
    const std::uint64_t idx[1] = {index};
    volatile_touch(buf, idx, is_store);
  }

  template <typename T>
  bool atomic_min_one(Buffer<T>& buf, std::uint64_t index, T value) {
    const std::uint64_t idx[1] = {index};
    const T val[1] = {value};
    std::uint8_t flag[1] = {0};
    atomic_min(buf, idx, std::span<const T>(val, 1),
               std::span<std::uint8_t>(flag, 1));
    return flag[0] != 0;
  }

  // Charges a device-side (dynamic parallelism) child kernel launch to this
  // warp; the child's work itself is enqueued by the caller as more tasks.
  void child_launch();

  // gsan annotation (no cost, no trace op, no counters): declares that this
  // warp spin-waits on buf[index] — a persistent-kernel queue protocol
  // consuming a slot another party must publish. The sanitizer flags waits
  // no host transfer and no device write (this launch's, or any earlier
  // launch's on any stream) can ever satisfy as `[gsan] no-progress` — the
  // lost-wakeup / deadlock class. Free when the sanitizer is off; timing
  // and counters are identical either way. Defined after GpuSim.
  template <typename T>
  void spin_wait(const Buffer<T>& buf, std::uint64_t index);

 private:
  friend class GpuSim;
  friend class KernelScope;

  WarpCtx(GpuSim& sim, int sm_id, std::uint32_t task_index, bool sanitize,
          bool fault)
      : sim_(sim),
        sm_id_(sm_id),
        task_(task_index),
        sanitize_(sanitize),
        fault_(fault) {}

  // Translates lane element indices to device addresses directly into the
  // launch trace's address pool (no per-call allocation). Under the
  // sanitizer, out-of-bounds indices are reported and clamped; the
  // sanitizer-off hot path keeps the single debug assertion.
  template <typename T>
  void record_addresses(const Buffer<T>& buf,
                        std::span<const std::uint64_t> indices) {
    RDBS_DCHECK(indices.size() <= 32);
    std::uint64_t* slots = trace_slots(indices.size());
    if (sanitize_) {
      for (std::size_t i = 0; i < indices.size(); ++i) {
        slots[i] = buf.address_of(
            checked_index_slow(buf.name(), indices[i], buf.size()));
      }
    } else {
      for (std::size_t i = 0; i < indices.size(); ++i) {
        RDBS_DCHECK(indices[i] < buf.size());
        slots[i] = buf.address_of(indices[i]);
      }
    }
  }

  // Clamp applied to the *functional* access so a reported out-of-bounds
  // index cannot corrupt host memory. No-op (one predicted branch) when the
  // sanitizer is off.
  template <typename T>
  std::uint64_t functional_index(const Buffer<T>& buf,
                                 std::uint64_t index) const {
    if (!sanitize_ || index < buf.size()) return index;
    return buf.size() == 0 ? 0 : buf.size() - 1;
  }

  // gfi hook: asks the owning simulator's fault injector whether this load
  // instruction takes a transient flip (defined after GpuSim below; called
  // only when the injector is enabled).
  template <typename T>
  void maybe_flip(const Buffer<T>& buf, std::span<T> out);

  std::uint64_t* trace_slots(std::size_t lanes);
  void record_mem(std::uint8_t kind, std::uint32_t lanes);
  std::uint64_t checked_index_slow(const std::string& buffer_name,
                                   std::uint64_t index, std::uint64_t size);
  bool active_task_valid() const;

  GpuSim& sim_;
  int sm_id_;
  std::uint32_t task_;
  bool sanitize_;
  bool fault_;  // fault injector enabled on the owning simulator
};

// How blocks map to SMs.
enum class Schedule {
  kStatic,   // block b -> SM (b mod num_sms): the fixed assignment of a
             // conventional grid launch; imbalance shows up as idle SMs
  kDynamic,  // each task goes to the currently least-loaded SM: models
             // persistent worker threads / dynamic parallelism + Hyper-Q
};

struct LaunchResult {
  double ms = 0;             // kernel wall time under the cost model
  double busy_cycles = 0;    // sum of all warp cycles
  std::uint64_t tasks = 0;   // warp tasks executed
};

// How a launch's memory-cost side is computed. All three produce bit-
// identical counters, per-launch ms and functional results; they differ
// only in wall-clock cost and in whether a trace is materialized for
// post-launch consumers (the sanitizer scans it after replay).
enum class ReplayMode : std::uint8_t {
  kAuto = 0,     // fused when legal (sanitizer off), else two-pass
  kTwoPass = 1,  // always record a trace, then replay it
  kFused = 2,    // request fused; still falls back to two-pass when the
                 // sanitizer needs a materialized trace
};

// Cumulative trace/replay statistics (capacity reporting for the
// throughput bench and the SCALE-21 capacity run).
struct TraceStats {
  std::uint64_t launches = 0;        // total launches ended
  std::uint64_t fused_launches = 0;  // of which ran fused (no trace stored)
  std::uint64_t peak_trace_bytes = 0;   // largest materialized trace
  std::uint64_t peak_legacy_bytes = 0;  // what AoS would have needed for it
};

class GpuSim {
 public:
  explicit GpuSim(DeviceSpec spec);

  const DeviceSpec& spec() const { return spec_; }
  Counters& counters() { return counters_; }
  const Counters& counters() const { return counters_; }
  MemorySim& memory() { return memory_; }

  // --- sanitizer (gsan) -----------------------------------------------------
  // Opt-in hazard analysis over the launch trace; see gpusim/sanitizer.hpp
  // and docs/sanitizer.md. Enable before running kernels. When off (the
  // default) the only cost is one never-taken branch per warp memory
  // instruction.
  void enable_sanitizer(SanitizeMode mode);
  Sanitizer* sanitizer() { return sanitizer_.get(); }
  const Sanitizer* sanitizer() const { return sanitizer_.get(); }
  // Names the next launch in sanitizer reports (no-op when the sanitizer is
  // off). Labels make hazard reports self-describing and diffable.
  void label_next_launch(std::string_view label) {
    if (sanitizer_) pending_label_.assign(label);
  }
  // gsan hook behind WarpCtx::spin_wait: records that `task` of the open
  // launch spins on device address `addr`. Pure annotation — touches no
  // timing, counter or trace state.
  void note_spin_wait(std::uint32_t task, std::uint64_t addr) {
    if (sanitizer_) sanitizer_->note_wait(task, addr);
  }

  // --- fault injection (gfi) ------------------------------------------------
  // Deterministic seeded fault plans over the launch/record pipeline; see
  // gpusim/fault.hpp and docs/fault_injection.md. Enable before running
  // kernels; when off (the default) the only cost is one never-taken branch
  // per warp load instruction. Passing a config with enabled == false
  // removes a previously installed injector.
  void enable_fault_injection(const FaultConfig& config);
  const FaultInjector* fault_injector() const { return fault_.get(); }
  // Every event the injector placed, in canonical (record-phase) order —
  // byte-identical across sim_threads. Engines snapshot size() before an
  // attempt and scan the tail to classify it (core/recovery.hpp).
  const std::vector<GpuFault>& fault_log() const { return fault_log_; }
  // Latched by a kDeviceLoss fault; while set, no further faults are drawn
  // (the device is already gone) and every attempt counts as poisoned.
  bool device_lost() const { return device_lost_; }
  // Simulated cudaDeviceReset: clears the lost-device latch and the fault
  // log/budget. A real service would tear the process down instead; tests
  // use this to stage multi-phase chaos scenarios. A device-wide reset is a
  // full fence, so the sanitizer's happens-before clocks all join.
  void revive_device() {
    device_lost_ = false;
    fault_log_.clear();
    if (sanitizer_) sanitizer_->full_fence();
  }
  // Checkpoint poison hooks (core/checkpoint.hpp): engines snapshot a
  // distance buffer only while its backing region is clean, and clear the
  // stale mark when a retry re-initializes the buffer from scratch (the
  // bulk clear in recovery only fires when read-only data was also hit).
  template <typename T>
  bool buffer_poisoned(const Buffer<T>& buf) const {
    return memory_.region_poisoned(buf.address_of(0));
  }
  template <typename T>
  void clear_buffer_poison(const Buffer<T>& buf) {
    memory_.clear_region_poison(buf.address_of(0));
  }
  // Charges a host-side delay (e.g. a retry backoff) to one stream's
  // simulated timeline. The host is interacting with this stream's work, so
  // the sanitizer treats it as a two-way synchronization point.
  void charge_host_ms(double ms, StreamId stream = 0) {
    if (sanitizer_) sanitizer_->host_wait(stream);
    stream_state(stream).time_ms += ms;
  }

  // --- per-stream deadlines (serving layer; core/query_server.hpp) ----------
  // An absolute point on the stream's simulated clock after which its work
  // is late. The simulator never aborts anything itself — cancellation is
  // cooperative (engines poll core::CancelToken at their loop boundaries) —
  // but every launch *completion* past the deadline is counted, so the
  // serving layer can see exactly how many kernels a query still charged
  // after going over. Negative = no deadline (the default). Cleared by
  // reset_time()/reset_all() along with the stream clocks.
  void set_stream_deadline(StreamId stream, double deadline_ms) {
    stream_state(stream).deadline_ms = deadline_ms;
  }
  void clear_stream_deadline(StreamId stream) {
    stream_state(stream).deadline_ms = -1.0;
  }
  double stream_deadline_ms(StreamId stream) const {
    const StreamState* state = stream_state_if(stream);
    return state ? state->deadline_ms : -1.0;
  }
  // True once the stream's clock has reached its deadline.
  bool stream_deadline_exceeded(StreamId stream) const {
    const StreamState* state = stream_state_if(stream);
    return state && state->deadline_ms >= 0 &&
           state->time_ms >= state->deadline_ms;
  }
  // Kernels on `stream` that COMPLETED after its deadline had passed — the
  // device time a cooperatively cancelled query still charged between its
  // cancellation points (0 when no deadline was ever set).
  std::uint64_t stream_overrun_kernels(StreamId stream) const {
    const StreamState* state = stream_state_if(stream);
    return state ? state->overrun_kernels : 0;
  }

  // Applies one flip decision to a just-loaded value vector. Called from
  // WarpCtx::maybe_flip during the serial record phase; all state touched
  // here (log, counters, budget) is host-serial, so fault plans stay
  // deterministic for any replay worker count.
  template <typename T>
  void inject_load_fault(std::uint32_t task, const Buffer<T>& buf,
                         std::span<T> out) {
    if (!fault_ || out.empty() || device_lost_) return;
    if (fault_log_.size() >= fault_->config().max_faults) return;
    // The op ordinal comes from the simulator's own memory-op counter, not
    // the trace container, so fault plans are identical across trace
    // layouts and replay modes (fused launches store no trace at all).
    const std::uint64_t op_ordinal = launch_ops_ == 0 ? 0 : launch_ops_ - 1;
    const FaultInjector::FlipDecision d = fault_->load_fault(
        launch_stream_, current_stream_launch_, task, op_ordinal);
    if (!d.inject) return;
    GpuFault fault;
    fault.stream = launch_stream_;
    fault.launch = current_stream_launch_;
    fault.task = task;
    fault.op = op_ordinal;
    fault.buffer = buf.name();
    ++counters_.faults_injected;
    if (d.correctable) {
      // ECC caught and fixed the flip in flight: the loaded value is
      // correct, the event is only logged.
      fault.cls = FaultClass::kBitFlipCorrectable;
      ++counters_.ecc_corrected;
    } else {
      fault.cls = FaultClass::kBitFlipUncorrectable;
      memory_.mark_poisoned(buf.address_of(0));
      // Corrupt only finite floating-point values, and only mantissa bits:
      // the value stays finite, same-signed and within its binade, so the
      // poisoned attempt still terminates (see fault.hpp header comment).
      // Integer loads are reported but not value-corrupted — a flipped
      // vertex id would escape the simulation as an OOB host access.
      if constexpr (std::is_floating_point_v<T>) {
        T& value = out[d.lane % out.size()];
        if (std::isfinite(value)) {
          if constexpr (sizeof(T) == 8) {
            fault.bit = d.bit % 52;
            std::uint64_t bits;
            std::memcpy(&bits, &value, sizeof bits);
            bits ^= std::uint64_t{1} << fault.bit;
            std::memcpy(&value, &bits, sizeof bits);
          } else {
            fault.bit = d.bit % 23;
            std::uint32_t bits;
            std::memcpy(&bits, &value, sizeof bits);
            bits ^= std::uint32_t{1} << fault.bit;
            std::memcpy(&value, &bits, sizeof bits);
          }
        }
      }
    }
    fault_log_.push_back(std::move(fault));
  }

  // --- allocation-table maintenance ----------------------------------------
  // Records a host-side transfer/memset into `buf` (whole buffer or the
  // element range [first, first+count)) so the sanitizer's uninitialized-
  // read check knows the data is defined. Cheap and always tracked, so
  // engines may call it regardless of sanitize mode or enable order.
  template <typename T>
  void mark_initialized(const Buffer<T>& buf) {
    if (buf.size() == 0) return;
    memory_.mark_host_initialized(buf.address_of(0),
                                  buf.address_of(buf.size()));
  }
  template <typename T>
  void mark_initialized(const Buffer<T>& buf, std::uint64_t first,
                        std::uint64_t count) {
    memory_.mark_host_initialized(buf.address_of(first),
                                  buf.address_of(first + count));
  }
  // Marks `buf` immutable from device code; any store/atomic to it becomes
  // a read-only-write hazard (shared DeviceCsrBuffers across streams).
  template <typename T>
  void mark_read_only(const Buffer<T>& buf) {
    if (buf.size() == 0) return;  // empty region: nothing to protect
    memory_.mark_read_only(buf.address_of(0));
  }
  // Simulated cudaFree: later device accesses to the region are
  // use-after-free hazards (addresses are never reused). The host-side
  // vector in `buf` stays alive, so even un-sanitized code cannot corrupt
  // host memory through a stale Buffer.
  template <typename T>
  void free_buffer(const Buffer<T>& buf) {
    memory_.free_region(buf.address_of(0));
  }

  // --- worker-thread control ----------------------------------------------
  // Replay-phase host threads for this simulator instance. 0 = use the
  // process default (set_default_worker_threads, else all OpenMP threads).
  // Results are bit-identical for every value; this is purely a wall-clock
  // knob. Serial builds (no RDBS_PARALLEL) ignore it.
  void set_worker_threads(int threads) { worker_threads_ = threads; }
  int worker_threads() const;
  // Default applied to simulators constructed afterwards (engines construct
  // their GpuSim internally; tests and benches set this).
  static void set_default_worker_threads(int threads);
  static int default_worker_threads();
  // True when the library was built with RDBS_PARALLEL (OpenMP) support.
  static bool parallel_compiled();

  // --- replay mode & trace layout ------------------------------------------
  // See ReplayMode above. Purely a wall-clock/footprint knob: results are
  // bit-identical across all modes. May not change inside an open launch.
  void set_replay_mode(ReplayMode mode) {
    RDBS_DCHECK(!launch_open_);
    replay_mode_ = mode;
  }
  ReplayMode replay_mode() const { return replay_mode_; }
  static void set_default_replay_mode(ReplayMode mode);
  static ReplayMode default_replay_mode();
  // Trace storage layout for two-pass launches (gpusim/trace.hpp). The
  // trace is per-launch scratch, so switching clears it.
  void set_trace_layout(TraceLayout layout) {
    RDBS_DCHECK(!launch_open_);
    trace_.clear();
    trace_.set_layout(layout);
  }
  TraceLayout trace_layout() const { return trace_.layout(); }
  static void set_default_trace_layout(TraceLayout layout);
  static TraceLayout default_trace_layout();
  // Cumulative trace/replay statistics (never reset; diagnostics only).
  const TraceStats& trace_stats() const { return stats_; }

  template <typename T>
  Buffer<T> alloc(std::string name, std::size_t count,
                  std::uint32_t device_elem_bytes = sizeof(T)) {
    const std::uint64_t base = memory_.allocate(
        static_cast<std::uint64_t>(count) * device_elem_bytes, name,
        device_elem_bytes);
    return Buffer<T>(std::move(name), count, device_elem_bytes, base);
  }

  // --- kernel execution -----------------------------------------------------
  // Runs warp tasks 0..num_tasks-1. `run(ctx, task_index)` performs the
  // task's work through ctx. Tasks are grouped into blocks of
  // `warps_per_block` consecutive tasks for SM assignment.
  template <typename F>
  LaunchResult run_kernel(Schedule schedule, std::uint64_t num_tasks,
                          int warps_per_block, F&& run,
                          bool host_launch = true, StreamId stream = 0) {
    begin_launch(host_launch, stream);
    for (std::uint64_t t = 0; t < num_tasks; ++t) {
      const int sm = pick_sm(schedule, t, warps_per_block);
      WarpCtx ctx = begin_task(sm);
      run(ctx, t);
      commit_task(ctx);
    }
    return end_launch(num_tasks, host_launch);
  }

  // Persistent-kernel variant for the bucket-aware asynchronous phase 1:
  // the task list may GROW while running (workers push newly activated
  // vertices). Tasks are consumed in queue order and always scheduled
  // dynamically. `tasks` is any random-access container; `run(ctx, tasks[i],
  // i)` may append to it.
  template <typename TaskVec, typename F>
  LaunchResult run_persistent(TaskVec& tasks, F&& run,
                              bool host_launch = true, StreamId stream = 0) {
    begin_launch(host_launch, stream);
    std::uint64_t consumed = 0;
    while (consumed < tasks.size()) {
      const int sm = pick_sm(Schedule::kDynamic, consumed, 1);
      WarpCtx ctx = begin_task(sm);
      run(ctx, consumed);
      commit_task(ctx);
      ++consumed;
    }
    return end_launch(consumed, host_launch);
  }

  // Manual kernel control for engines whose task structure is not a simple
  // fixed-size grid (heterogeneous persistent kernels, dynamic parallelism
  // with growing work queues). Usage:
  //   KernelScope k(sim, Schedule::kDynamic);
  //   while (work) { WarpCtx ctx = k.make_warp(); ...; k.commit(ctx); }
  //   LaunchResult r = k.finish();
  // See KernelScope below.

  // Adds a fixed host-side overhead (e.g. a stream synchronize between
  // dependent kernels in synchronous mode) to one stream's timeline. For
  // the sanitizer this is cudaStreamSynchronize: the host clock joins the
  // stream's — later launches on ANY stream are ordered after this one.
  void host_barrier(StreamId stream = 0) {
    if (sanitizer_) sanitizer_->host_sync(stream);
    stream_state(stream).time_ms += spec_.kernel_launch_us * 1e-3 * 0.5;
  }

  // Host<->device transfer over PCIe (the paper's timings EXCLUDE these, as
  // do the engines here; exposed for end-to-end accounting in user code).
  // Cost: fixed setup latency plus bytes over pcie_bandwidth_gbps.
  double memcpy_ms(std::uint64_t bytes) const {
    constexpr double kPcieBandwidthGbps = 12.0;  // PCIe 3.0 x16 effective
    constexpr double kSetupUs = 10.0;
    return kSetupUs * 1e-3 + static_cast<double>(bytes) /
                                 (kPcieBandwidthGbps * 1e6);
  }
  // Charges a transfer onto the simulated timeline of one stream. A
  // (synchronous) memcpy orders the host and the stream both ways, so the
  // sanitizer joins their happens-before clocks.
  void memcpy_h2d(std::uint64_t bytes, StreamId stream = 0) {
    if (sanitizer_) sanitizer_->host_transfer(stream);
    stream_state(stream).time_ms += memcpy_ms(bytes);
  }
  void memcpy_d2h(std::uint64_t bytes, StreamId stream = 0) {
    if (sanitizer_) sanitizer_->host_transfer(stream);
    stream_state(stream).time_ms += memcpy_ms(bytes);
  }

  // --- simulated time -------------------------------------------------------
  // Device wall time: the latest stream clock, floored by the aggregate
  // device-throughput bound (total busy cycles across all launches cannot
  // retire faster than every SM issuing flat out, nor can total DRAM traffic
  // beat peak bandwidth). With a single stream this equals the old
  // accumulate-every-launch timeline exactly.
  double elapsed_ms() const;
  // Per-stream clock: completion time of the last operation on `stream`.
  double stream_elapsed_ms(StreamId stream) const;
  // Time kernels on `stream` spent waiting for one of the device's
  // max_concurrent_kernels slots (Hyper-Q admission queue).
  double stream_queue_wait_ms(StreamId stream) const;
  // Kernels admitted on `stream` (host launches and device-side scopes).
  std::uint64_t stream_kernels(StreamId stream) const;
  // Aggregate-throughput lower bound on elapsed_ms (diagnostic).
  double device_busy_floor_ms() const { return device_work_ms_; }
  int num_streams() const { return static_cast<int>(streams_.size()); }

  void reset_time();
  void reset_all();

 private:
  friend class WarpCtx;
  friend class KernelScope;

  // TraceOp / TaskRecord live in gpusim/trace.hpp (shared with the
  // sanitizer, which scans the same per-launch trace after replay).

  // L1-shard counter partials, padded to avoid false sharing between the
  // replay workers.
  struct alignas(64) ShardCounters {
    std::uint64_t l1_sector_accesses = 0;
    std::uint64_t l1_sector_hits = 0;
    std::uint64_t memory_transactions = 0;
    std::uint64_t atomic_conflicts = 0;
  };

  void begin_launch(bool host_launch, StreamId stream = 0);
  int pick_sm(Schedule schedule, std::uint64_t task_index,
              int warps_per_block);
  WarpCtx begin_task(int sm);
  void commit_task(const WarpCtx& ctx);
  LaunchResult end_launch(std::uint64_t tasks, bool host_launch);

  // Replay phase (called from end_launch of a two-pass launch): charges the
  // recorded trace against the memory hierarchy. Parallel over per-SM L1
  // shards, serial over the shared L2 in canonical task order.
  void replay_launch();
  void replay_shard(int sm);
  // Seed-faithful shard replay used for the legacy (AoS) layout: per-sector
  // scalar cache probes and a per-sector L2 request list, exactly the
  // pipeline this codebase shipped before the batched/binned overhaul. Kept
  // as the executable baseline the throughput benchmark measures against
  // and as a differential oracle for the layout-equivalence tests (both
  // paths must produce bit-identical counters and task cycles).
  void replay_shard_seed(int sm);
  // Fused-mode charge of one warp memory instruction, applied inline during
  // the serial record phase (bit-identical to record+replay; see the header
  // comment). The staged lane addresses live in fused_lanes_.
  void fused_charge(std::uint8_t kind, std::uint32_t lanes,
                    std::uint32_t task);
  // Probes the masked sectors of one line in the shared L2, updating the
  // L2/DRAM counters; returns the replay cycles to charge. `cached` marks
  // the load/store path (L2 hits cost kL2ReplayCycles; atomic/volatile hits
  // are free — they already paid their sector transactions).
  std::uint64_t charge_l2(std::uint64_t line, std::uint32_t mask, bool cached);
  // Charges the canonical-order L2 request stream in l2_stream_ (appended
  // by the fused record phase, or gathered from the two-pass shards),
  // binning large streams by L2 set first. Clears the stream.
  void flush_l2_stream();

  // gfi: applies the pending launch-level fault (and the cost-clock
  // watchdog) to a finished launch. Defined in sim.cpp.
  void apply_launch_fault(LaunchResult& result);

  // --- stream timelines (Hyper-Q admission model) --------------------------
  // Each stream carries its own clock. A kernel "arrives" at its stream's
  // current clock; admission retires every in-flight kernel that ended by
  // then, and if all max_concurrent_kernels slots are still held the kernel
  // starts when the earliest in-flight kernel ends (FCFS, m identical
  // slots). The gap is the stream's queue wait. All arithmetic is serial
  // host-side doubles — deterministic for any sim_threads.
  struct StreamState {
    double time_ms = 0;
    double queue_wait_ms = 0;
    std::uint64_t kernels = 0;
    // Serving-layer deadline on this stream's clock (negative = none) and
    // the count of kernels that completed past it; see set_stream_deadline.
    double deadline_ms = -1.0;
    std::uint64_t overrun_kernels = 0;
  };
  StreamState& stream_state(StreamId stream);
  const StreamState* stream_state_if(StreamId stream) const;
  // Charges `duration_ms` as one kernel on `stream`; returns its start time.
  double admit_kernel(StreamId stream, double duration_ms);

  DeviceSpec spec_;
  MemorySim memory_;
  Counters counters_;
  std::vector<StreamState> streams_;
  std::vector<double> inflight_end_ms_;  // end times of resident kernels
  double device_work_ms_ = 0;            // aggregate-throughput floor
  int worker_threads_ = 0;

  // gsan state (null when off). pending_label_ names the next launch;
  // launch_ordinal_ is a monotone id for unlabeled launches.
  std::unique_ptr<Sanitizer> sanitizer_;
  std::string pending_label_;
  std::uint64_t launch_ordinal_ = 0;

  // gfi state (null when off). Launch ordinals are tracked per stream so
  // fault keys are stable under any interleaving of other streams' work;
  // the log, latch and budget survive reset_all() (a device does not heal
  // because the host reran a query) — revive_device() clears them.
  std::unique_ptr<FaultInjector> fault_;
  std::vector<GpuFault> fault_log_;
  std::vector<std::uint64_t> stream_launch_ordinals_;
  std::uint64_t current_stream_launch_ = 0;  // ordinal of the open launch
  std::optional<FaultClass> pending_launch_fault_;
  bool device_lost_ = false;

  // --- record-phase state (one launch at a time) ---------------------------
  static constexpr std::uint32_t kNoTask = ~0u;
  LaunchTrace trace_;
  std::vector<TaskRecord> task_records_;
  std::uint32_t active_task_ = kNoTask;
  // Memory-op ordinal counter for the open launch: op_begin/op_end indices
  // and the fault injector's op key, independent of trace storage (fused
  // launches count ops without storing them).
  std::uint32_t launch_ops_ = 0;
  bool launch_open_ = false;
  bool fused_launch_ = false;  // the open launch charges inline (no trace)
  StreamId launch_stream_ = 0;
  ReplayMode replay_mode_ = ReplayMode::kAuto;
  std::uint32_t spl_shift_ = 2;  // log2(sectors per line), from MemorySim
  // Fused-mode staging for one warp op's lane addresses (the trace_slots
  // target when no trace is materialized).
  std::array<std::uint64_t, 32> fused_lanes_{};
  TraceStats stats_;

  // Dynamic scheduling: per-SM weight plus a lazy min-heap over
  // (weight, sm) so pick_sm is O(log num_sms) instead of a linear argmin.
  std::vector<std::uint64_t> sm_load_;
  std::vector<std::pair<std::uint64_t, int>> load_heap_;

  // --- replay scratch (reused across launches; no steady-state allocs) -----
  std::vector<std::vector<std::uint32_t>> sm_tasks_;
  std::vector<int> used_sms_;
  // Per-SM L2 request lists, one entry per (line, sector-mask) the L1 could
  // not serve: line index shifted past the mask, the mask of requested
  // sectors, and bit 0 marking cached (load/store) requests — clear for
  // atomics/volatiles, which charge no L2-hit replay cycles. Packing:
  //   (line << (sectors_per_line + 1)) | (mask << 1) | cached
  std::vector<std::vector<std::uint64_t>> l2_requests_;
  std::vector<ShardCounters> shard_counters_;
  // Binned L2 pass scratch: the canonical-order request stream tagged with
  // its owning task, counting-sorted by L2 set (multisplit-style radix
  // binning — stable, so per-set request order stays canonical and the
  // LRU outcome is bit-identical to the direct in-order pass).
  struct L2StreamEntry {
    std::uint64_t packed = 0;
    std::uint32_t task = 0;
  };
  std::vector<L2StreamEntry> l2_stream_;
  std::vector<L2StreamEntry> l2_binned_;
  std::vector<std::uint32_t> l2_bin_starts_;

  // Per-launch aggregation scratch.
  std::vector<double> sm_cycles_;
  std::vector<std::uint64_t> sm_longest_task_;
  std::uint64_t launch_dram_bytes_ = 0;
  std::uint64_t launch_child_launches_ = 0;
};

template <typename T>
void WarpCtx::maybe_flip(const Buffer<T>& buf, std::span<T> out) {
  sim_.inject_load_fault(task_, buf, out);
}

template <typename T>
void WarpCtx::spin_wait(const Buffer<T>& buf, std::uint64_t index) {
  if (!sanitize_) return;
  sim_.note_spin_wait(task_,
                      buf.address_of(functional_index(buf, index)));
}

// RAII handle over one kernel launch whose warp tasks are produced on the
// fly by the caller (the engine's persistent / dynamic-parallelism kernels).
// Exactly one finish() per scope; destruction without finish() aborts in
// debug builds (a silently-untimed kernel would corrupt the experiment).
class KernelScope {
 public:
  KernelScope(GpuSim& sim, Schedule schedule, bool host_launch = true,
              int warps_per_block = 8, StreamId stream = 0)
      : sim_(sim),
        schedule_(schedule),
        host_launch_(host_launch),
        warps_per_block_(warps_per_block) {
    sim_.begin_launch(host_launch_, stream);
  }

  ~KernelScope() { RDBS_DCHECK(finished_); }

  // Creates the next warp's execution context (assigns it to an SM).
  WarpCtx make_warp() {
    const int sm = sim_.pick_sm(schedule_, task_index_++, warps_per_block_);
    return sim_.begin_task(sm);
  }

  // Seals a completed warp's trace and feeds its weight back into the
  // dynamic scheduler.
  void commit(const WarpCtx& ctx) { sim_.commit_task(ctx); }

  LaunchResult finish() {
    RDBS_DCHECK(!finished_);
    finished_ = true;
    return sim_.end_launch(task_index_, host_launch_);
  }

 private:
  GpuSim& sim_;
  Schedule schedule_;
  bool host_launch_;
  int warps_per_block_;
  std::uint64_t task_index_ = 0;
  bool finished_ = false;
};

}  // namespace rdbs::gpusim
