// GPU device descriptors for the SIMT cost model.
//
// The paper evaluates on an NVIDIA V100 (5120 CUDA cores / 80 SMs, 900 GB/s)
// and a Tesla T4 (2560 cores / 40 SMs, 320 GB/s); both are modeled here, and
// Fig. 12's platform-scalability experiment runs the same workload under the
// two descriptors. Only parameters the cost model consumes are included.
#pragma once

#include <cstdint>
#include <string>

namespace rdbs::gpusim {

struct DeviceSpec {
  std::string name;
  int num_sms = 80;
  int warp_size = 32;
  // Warp instructions an SM can issue per cycle (warp schedulers).
  int warp_schedulers = 4;
  // Maximum threads per block supported by the launch configuration.
  int max_threads_per_block = 1024;
  double clock_ghz = 1.38;           // SM clock
  double mem_bandwidth_gbps = 900.0; // peak DRAM bandwidth
  int l1_kb_per_sm = 128;            // unified L1/tex capacity
  int l1_line_bytes = 128;           // cache line (4 x 32B sectors)
  int l1_ways = 4;
  int l2_kb = 6144;                  // shared L2 (atomics resolve here)
  int l2_ways = 16;
  // Fixed host-side cost of launching a kernel from the CPU (drives the
  // synchronous mode's per-iteration barrier overhead).
  double kernel_launch_us = 6.0;
  // Cost of a device-side (dynamic parallelism) child kernel launch; much
  // cheaper than a host launch and overlapped via Hyper-Q.
  double child_launch_us = 0.7;
  // Extra cycles a conflicting atomic lane serializes for.
  int atomic_conflict_cycles = 4;
  // Hyper-Q: how many kernels (from any stream) the device can have resident
  // at once. Kernels beyond the cap queue and accrue stream queue-wait.
  int max_concurrent_kernels = 32;

  double cycles_to_ms(double cycles) const {
    return cycles / (clock_ghz * 1e6);
  }
  double bytes_to_ms(double bytes) const {
    return bytes / (mem_bandwidth_gbps * 1e6);
  }
};

// The two platforms from the paper plus a small debug device for tests.
DeviceSpec v100();
DeviceSpec tesla_t4();
DeviceSpec test_device();  // 4 SMs, tiny cache: makes cache effects visible

}  // namespace rdbs::gpusim
