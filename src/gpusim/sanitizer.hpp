// gsan — opt-in device-memory sanitizer & race detector for GpuSim.
//
// Every device access already flows through WarpCtx::load/store/atomic_min/
// atomic_touch/volatile_* and lands in the per-launch record trace; gsan
// exploits that single choke point to run four hazard analyses without a
// second execution mode:
//
//   * out-of-bounds — checked at record time against Buffer::size() (the
//     only place the element index and buffer extent are both known; the
//     end-of-launch scan cannot distinguish "one past the end" from "first
//     element of the neighboring 128-byte-aligned region"). The offending
//     index is clamped so the functional access stays memory-safe.
//   * use-after-free — the bump allocator never reuses addresses, so any
//     access landing in a region freed via GpuSim::free_buffer is exact.
//   * uninitialized read — per-32-byte-sector shadow state; device stores,
//     atomics and volatile stores mark sectors written, host transfers are
//     recorded in MemorySim's allocation table (mark_initialized), and a
//     load touching an unmarked sector is flagged. Sector granularity can
//     hide a read of an uninitialized element whose neighbor was written
//     (false negative), but never flags initialized data (no false
//     positives).
//   * intra-kernel races — within one launch (no intervening barrier),
//     a plain (non-atomic, non-volatile) store to an address paired with
//     ANY access to the same address from a different warp task is a
//     hazard: plain store + plain store (write/write race), plain store +
//     plain load (read/write race), plain store + atomic or volatile
//     access (the BASYN atomicity-violation class — one party assumed
//     exclusive ownership, the other assumed synchronized access).
//     Atomic/volatile accesses pair safely with each other by design.
//   * read-only violations — any write-kind access to a region marked
//     read-only (the CSR arrays shared across QueryBatch streams). This is
//     the cross-stream hazard check: a stream scribbling on the shared
//     graph would corrupt every other stream's queries.
//
// Reports are deterministic and rank-stable: hazards are deduplicated by
// (kernel label, buffer, element, kind) in canonical discovery order — the
// record phase is serial in task order — so two runs (any sim_threads
// count) produce byte-identical reports and CI diffs are meaningful.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "gpusim/memory.hpp"
#include "gpusim/trace.hpp"

namespace rdbs::gpusim {

// Plumbed through engine options; kOff leaves the simulator hot path with a
// single never-taken branch per warp memory instruction.
enum class SanitizeMode : std::uint8_t {
  kOff = 0,
  kOn = 1,
};

struct HazardRecord {
  enum class Kind : std::uint8_t {
    kOutOfBounds = 0,
    kUseAfterFree,
    kUninitRead,
    kRaceWW,      // plain store vs. plain store, different warp tasks
    kRaceRW,      // plain store vs. plain load, different warp tasks
    kAtomicMix,   // plain store vs. atomic/volatile access (BASYN class)
    kReadOnlyWrite,
  };

  Kind kind = Kind::kOutOfBounds;
  std::string kernel;        // launch label, or "kernel@<ordinal>"
  std::string buffer;        // region name ("?" when unmapped)
  std::uint64_t element = 0; // element index within the buffer
  // Offending warp tasks (canonical task indices within the launch).
  // second_task is kNoTask for the single-site hazard kinds.
  std::uint32_t first_task = kNoTask;
  std::uint32_t second_task = kNoTask;
  std::uint64_t count = 1;   // occurrences folded into this record

  static constexpr std::uint32_t kNoTask = ~0u;
};

const char* hazard_kind_name(HazardRecord::Kind kind);

class Sanitizer {
 public:
  explicit Sanitizer(MemorySim& memory) : memory_(&memory) {}

  // --- hooks called by GpuSim / WarpCtx ------------------------------------
  // Names the launch whose trace is being recorded. `label` may be empty
  // (reports then use "kernel@<ordinal>").
  void begin_launch(std::string_view label, std::uint64_t ordinal);
  // Record-time bounds check: returns `index` when in bounds, otherwise
  // reports an out-of-bounds hazard and returns the nearest valid index so
  // the functional access stays memory-safe.
  std::uint64_t checked_index(const std::string& buffer_name,
                              std::uint64_t index, std::uint64_t size,
                              std::uint32_t task);
  // End-of-launch scan over the recorded trace (called after replay, before
  // the trace is discarded). Serial; deterministic. Reads the trace through
  // LaunchTrace's cursor API, so it is blind to the storage layout
  // (compressed SoA or legacy AoS) — lane addresses decode in original lane
  // order either way, keeping reports byte-identical across layouts.
  void scan_launch(const LaunchTrace& trace,
                   std::span<const TaskRecord> tasks);

  // --- results -------------------------------------------------------------
  const std::vector<HazardRecord>& hazards() const { return hazards_; }
  // Human- and diff-friendly report, one line per deduplicated hazard in
  // discovery order; empty string when clean.
  std::string report() const;
  void clear();

 private:
  // First two distinct warp tasks that issued accesses of one kind group to
  // an address within the current launch.
  struct TaskPair {
    std::uint32_t t1 = HazardRecord::kNoTask;
    std::uint32_t t2 = HazardRecord::kNoTask;
    void add(std::uint32_t task) {
      if (t1 == HazardRecord::kNoTask) {
        t1 = task;
      } else if (t1 != task && t2 == HazardRecord::kNoTask) {
        t2 = task;
      }
    }
  };
  struct AddressState {
    TaskPair plain_store;
    TaskPair plain_load;
    TaskPair synced;  // atomics + volatile accesses
  };

  void report_hazard(HazardRecord::Kind kind, const std::string& buffer,
                     std::uint64_t element, std::uint32_t first_task,
                     std::uint32_t second_task);
  // Shadow bitvector (one bit per 32-byte sector) for region `index`,
  // created on demand — regions may be allocated before or after the
  // sanitizer is enabled.
  std::vector<std::uint64_t>& shadow_for(std::size_t region_index);
  void races_for_address(std::uint64_t addr, const AddressState& state);

  MemorySim* memory_;
  std::string current_kernel_ = "kernel@0";
  std::vector<HazardRecord> hazards_;
  // Dedup key -> index into hazards_ (string key: kind|kernel|buffer|elem).
  std::unordered_map<std::string, std::size_t> dedup_;
  // Device-store shadow, parallel to MemorySim::regions().
  std::vector<std::vector<std::uint64_t>> shadow_;
  // Per-launch race bookkeeping (cleared each scan; capacity reused).
  std::unordered_map<std::uint64_t, AddressState> launch_state_;
};

}  // namespace rdbs::gpusim
