// gsan — opt-in device-memory sanitizer & race detector for GpuSim.
//
// Every device access already flows through WarpCtx::load/store/atomic_min/
// atomic_touch/volatile_* and lands in the per-launch record trace; gsan
// exploits that single choke point to run its hazard analyses without a
// second execution mode:
//
//   * out-of-bounds — checked at record time against Buffer::size() (the
//     only place the element index and buffer extent are both known; the
//     end-of-launch scan cannot distinguish "one past the end" from "first
//     element of the neighboring 128-byte-aligned region"). The offending
//     index is clamped so the functional access stays memory-safe.
//   * use-after-free — the bump allocator never reuses addresses, so any
//     access landing in a region freed via GpuSim::free_buffer is exact.
//   * uninitialized read — per-32-byte-sector shadow state; device stores,
//     atomics and volatile stores mark sectors written, host transfers are
//     recorded in MemorySim's allocation table (mark_initialized), and a
//     load touching an unmarked sector is flagged. Sector granularity can
//     hide a read of an uninitialized element whose neighbor was written
//     (false negative), but never flags initialized data (no false
//     positives).
//   * intra-kernel races — within one launch (no intervening barrier),
//     a plain (non-atomic, non-volatile) store to an address paired with
//     ANY access to the same address from a different warp task is a
//     hazard: plain store + plain store (write/write race), plain store +
//     plain load (read/write race), plain store + atomic or volatile
//     access (the BASYN atomicity-violation class — one party assumed
//     exclusive ownership, the other assumed synchronized access).
//     Atomic/volatile accesses pair safely with each other by design.
//   * read-only violations — any write-kind access to a region marked
//     read-only (the CSR arrays shared across QueryBatch streams). A
//     stream scribbling on the shared graph would corrupt every other
//     stream's queries.
//   * cross-stream races — gsan v2. The sanitizer keeps one vector clock
//     per stream plus a host clock, advanced by the events GpuSim reports:
//     a launch on stream S joins the host clock into S's clock and opens a
//     new epoch (tick on component S); host_barrier joins S into the host
//     clock (cudaStreamSynchronize); memcpys and charged host waits join
//     both ways; revive_device is a full fence; a stream-stall fault opens
//     a fresh epoch on the stalled stream. Two launches are ordered iff
//     the later one's clock has seen the earlier one's epoch — plain host
//     issue order alone does NOT order distinct streams. Per touched
//     buffer (region) the sanitizer keeps the last plain-write /
//     plain-read / synced-access epoch per stream; a conflicting pair
//     (plain write vs. anything, in either direction) on two streams not
//     ordered by happens-before is a cross-stream-race hazard. Atomics
//     and volatiles pair safely with each other across streams, exactly as
//     within a launch. Granularity is the buffer, not the element —
//     concurrent streams must not share a writable buffer at all (the
//     QueryBatch contract); partitioned or handed-off buffers stay clean
//     because the hand-off points (barrier, memcpy) order the clocks.
//   * no-progress — gsan v2. Persistent-kernel queue protocols declare
//     the slot a warp spins on via WarpCtx::spin_wait (a pure annotation:
//     no trace op, no cycles). Because functional execution is host-serial,
//     any value a spin ever consumes must already have been produced by
//     the time the launch ends — so a waited-on cell that no same-launch
//     write, no earlier launch's write and no host transfer has touched
//     can never be satisfied: the lost-wakeup / deadlock class, reported
//     instead of silently burning watchdog budget.
//
// Reports are deterministic and rank-stable: hazards are deduplicated by
// (kind, kernel label, buffer, element, stream pair) in canonical discovery
// order — the record phase and the end-of-launch scans are serial in task
// order — so two runs (any sim_threads count) produce byte-identical
// reports and CI diffs are meaningful.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "gpusim/memory.hpp"
#include "gpusim/trace.hpp"

namespace rdbs::gpusim {

// Plumbed through engine options; kOff leaves the simulator hot path with a
// single never-taken branch per warp memory instruction.
enum class SanitizeMode : std::uint8_t {
  kOff = 0,
  kOn = 1,
};

struct HazardRecord {
  enum class Kind : std::uint8_t {
    kOutOfBounds = 0,
    kUseAfterFree,
    kUninitRead,
    kRaceWW,      // plain store vs. plain store, different warp tasks
    kRaceRW,      // plain store vs. plain load, different warp tasks
    kAtomicMix,   // plain store vs. atomic/volatile access (BASYN class)
    kReadOnlyWrite,
    kCrossStreamRace,  // conflicting pair on two streams, unordered by
                       // the happens-before relation (gsan v2)
    kNoProgress,       // spin-wait no write can ever satisfy (gsan v2)
  };

  Kind kind = Kind::kOutOfBounds;
  std::string kernel;        // launch label, or "kernel@<ordinal>"
  std::string buffer;        // region name ("?" when unmapped)
  std::uint64_t element = 0; // element index within the buffer
  // Offending warp tasks (canonical task indices within the launch).
  // second_task is kNoTask for the single-site hazard kinds.
  std::uint32_t first_task = kNoTask;
  std::uint32_t second_task = kNoTask;
  // Streams involved. Cross-stream-race: first = the prior (epoch) stream,
  // second = the stream of the launch that closed the race. No-progress:
  // first = the spinning launch's stream. kNoStream for the per-launch
  // hazard kinds, whose reports are stream-agnostic.
  int first_stream = kNoStream;
  int second_stream = kNoStream;
  std::uint64_t count = 1;   // occurrences folded into this record

  static constexpr std::uint32_t kNoTask = ~0u;
  static constexpr int kNoStream = -1;
};

const char* hazard_kind_name(HazardRecord::Kind kind);

class Sanitizer {
 public:
  explicit Sanitizer(MemorySim& memory) : memory_(&memory) {}

  // --- hooks called by GpuSim / WarpCtx ------------------------------------
  // Names the launch whose trace is being recorded (`label` may be empty —
  // reports then use "kernel@<ordinal>") and advances the happens-before
  // clocks: the launch joins the host clock into `stream`'s clock and opens
  // a new epoch on it. The snapshot taken here is the launch's vector clock
  // for every cross-stream check in the matching scan_launch.
  void begin_launch(std::string_view label, std::uint64_t ordinal,
                    int stream);
  // cudaStreamSynchronize-style event: the host has observed everything on
  // `stream` (GpuSim::host_barrier).
  void host_sync(int stream);
  // Host<->device transfer on `stream` (GpuSim::memcpy_h2d/d2h): the host
  // and the stream synchronize both ways.
  void host_transfer(int stream);
  // Host-side delay charged to `stream` (GpuSim::charge_host_ms — retry
  // backoffs, breaker cooldowns): host and stream synchronize both ways.
  void host_wait(int stream);
  // Device-wide fence: every stream and the host agree on one clock
  // (GpuSim::revive_device — the recovery path after device loss).
  void full_fence();
  // A stream-stall fault delayed `stream`; open a fresh epoch on it so
  // post-stall work is distinguishable from the stalled launch.
  void stream_stall(int stream);
  // WarpCtx::spin_wait annotation: `task` of the open launch spins on
  // device address `addr` until another party writes it. Checked at the end
  // of the launch's scan (see the no-progress bullet above).
  void note_wait(std::uint32_t task, std::uint64_t addr);
  // Record-time bounds check: returns `index` when in bounds, otherwise
  // reports an out-of-bounds hazard and returns the nearest valid index so
  // the functional access stays memory-safe.
  std::uint64_t checked_index(const std::string& buffer_name,
                              std::uint64_t index, std::uint64_t size,
                              std::uint32_t task);
  // End-of-launch scan over the recorded trace (called after replay, before
  // the trace is discarded). Serial; deterministic. Reads the trace through
  // LaunchTrace's cursor API, so it is blind to the storage layout
  // (compressed SoA or legacy AoS) — lane addresses decode in original lane
  // order either way, keeping reports byte-identical across layouts.
  void scan_launch(const LaunchTrace& trace,
                   std::span<const TaskRecord> tasks);

  // --- results -------------------------------------------------------------
  const std::vector<HazardRecord>& hazards() const { return hazards_; }
  // Human- and diff-friendly report, one line per deduplicated hazard in
  // discovery order; empty string when clean.
  std::string report() const;
  void clear();

 private:
  using VectorClock = std::vector<std::uint32_t>;

  // First two distinct warp tasks that issued accesses of one kind group to
  // an address within the current launch.
  struct TaskPair {
    std::uint32_t t1 = HazardRecord::kNoTask;
    std::uint32_t t2 = HazardRecord::kNoTask;
    void add(std::uint32_t task) {
      if (t1 == HazardRecord::kNoTask) {
        t1 = task;
      } else if (t1 != task && t2 == HazardRecord::kNoTask) {
        t2 = task;
      }
    }
  };
  struct AddressState {
    TaskPair plain_store;
    TaskPair plain_load;
    TaskPair synced;  // atomics + volatile accesses
  };
  // Last access of one conflict class by one stream to one region: the
  // epoch (that stream's clock component at the accessing launch) plus the
  // first element the launch touched, for the report.
  struct StreamEpoch {
    std::uint32_t clock = 0;  // 0 = never accessed
    std::uint64_t element = 0;
  };
  // Per-region epoch shadow, each vector indexed by stream.
  struct RegionEpochs {
    std::vector<StreamEpoch> writes;  // plain stores
    std::vector<StreamEpoch> reads;   // plain loads
    std::vector<StreamEpoch> syncs;   // atomics + volatiles
  };
  // What the open launch did to one region (first element per class).
  struct RegionUse {
    bool plain_write = false;
    bool plain_read = false;
    bool has_sync = false;
    std::uint64_t write_elem = 0;
    std::uint64_t read_elem = 0;
    std::uint64_t sync_elem = 0;
  };
  struct PendingWait {
    std::uint32_t task = 0;
    std::uint64_t addr = 0;
  };

  void report_hazard(HazardRecord::Kind kind, const std::string& buffer,
                     std::uint64_t element, std::uint32_t first_task,
                     std::uint32_t second_task,
                     int first_stream = HazardRecord::kNoStream,
                     int second_stream = HazardRecord::kNoStream);
  // Shadow bitvector (one bit per 32-byte sector) for region `index`,
  // created on demand — regions may be allocated before or after the
  // sanitizer is enabled.
  std::vector<std::uint64_t>& shadow_for(std::size_t region_index);
  void races_for_address(std::uint64_t addr, const AddressState& state);
  // Cross-stream happens-before pass over the launch's touched regions
  // (called at the end of scan_launch, before the epochs are updated with
  // this launch's accesses).
  void cross_stream_scan();
  // No-progress pass over the launch's spin_wait annotations (called last:
  // the launch's own writes have already marked the sector shadow).
  void check_no_progress();
  VectorClock& clock_for(int stream);
  static void join(VectorClock& into, const VectorClock& from);

  MemorySim* memory_;
  std::string current_kernel_ = "kernel@0";
  std::vector<HazardRecord> hazards_;
  // Dedup key -> index into hazards_
  // (string key: kind|kernel|buffer|elem|stream|stream).
  std::unordered_map<std::string, std::size_t> dedup_;
  // Device-store shadow, parallel to MemorySim::regions().
  std::vector<std::vector<std::uint64_t>> shadow_;
  // Per-launch race bookkeeping (cleared each scan; capacity reused).
  std::unordered_map<std::uint64_t, AddressState> launch_state_;

  // --- gsan v2: happens-before state ---------------------------------------
  // One vector clock per stream plus the host clock. Monotone across
  // reset_time()/reset_all() — simulated-time resets do not reorder memory.
  std::vector<VectorClock> stream_clocks_;
  VectorClock host_clock_;
  int launch_stream_ = 0;
  VectorClock launch_vc_;  // snapshot of the open launch's clock
  // Cross-launch epoch shadow, keyed by region index (never reused).
  std::unordered_map<std::size_t, RegionEpochs> epochs_;
  // Per-launch region-use bookkeeping, in canonical discovery order.
  std::unordered_map<std::size_t, RegionUse> launch_regions_;
  std::vector<std::size_t> touched_regions_;
  // spin_wait annotations of the open launch, in record order.
  std::vector<PendingWait> launch_waits_;
};

}  // namespace rdbs::gpusim
