// Global-memory model: a flat simulated address space plus one sectored L1
// cache per SM. Warp-level accesses are coalesced into 32-byte sector
// transactions exactly as the hardware's LSU would: lanes touching the same
// sector share one transaction.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "gpusim/cache.hpp"
#include "gpusim/device.hpp"

namespace rdbs::gpusim {

// One cache line touched by a warp memory instruction: line index
// (= address / line_bytes) plus the mask of 32B sectors requested within
// it. The replay probes these through SectoredCache::access_line, which
// amortizes the set's way scan over every sector of the line.
struct WarpLineRef {
  std::uint64_t line = 0;
  std::uint32_t mask = 0;
};

struct CoalesceResult {
  std::uint32_t distinct_addrs = 0;  // distinct lane addresses (conflicts)
  std::uint32_t sectors = 0;         // distinct 32B sectors (transactions)
  std::uint32_t lines = 0;           // entries written to line_out
};

// The shared coalescing primitive of the replay pipeline (two-pass shards,
// the fused record+replay path and MemorySim::access all charge through
// it): sorts the lane addresses in place (skipped when the record phase
// already saw them sorted — the common small-stride warp pattern), then a
// single pass yields the distinct-address count (atomic-conflict
// serialization), the distinct-sector count (transactions) and the
// ascending (line, sector-mask) list. `spl_shift` = log2(sectors per
// line). `line_out` must hold 32 entries.
inline CoalesceResult coalesce_warp_lanes(std::uint64_t* lane_addrs,
                                          std::uint32_t lanes, bool presorted,
                                          std::uint32_t spl_shift,
                                          WarpLineRef* line_out) {
  constexpr std::uint32_t kSectorShift = 5;  // SectoredCache::kSectorBytes
  if (lanes == 1) {
    const std::uint64_t sector = lane_addrs[0] >> kSectorShift;
    line_out[0] = {sector >> spl_shift,
                   1u << (sector & ((1u << spl_shift) - 1))};
    return {1, 1, 1};
  }
  if (!presorted) {
    // Insertion sort: n <= 32 and warp patterns are mostly presorted
    // (consecutive lanes touch consecutive elements).
    for (std::uint32_t i = 1; i < lanes; ++i) {
      const std::uint64_t key = lane_addrs[i];
      std::uint32_t j = i;
      for (; j > 0 && lane_addrs[j - 1] > key; --j) {
        lane_addrs[j] = lane_addrs[j - 1];
      }
      lane_addrs[j] = key;
    }
  }
  CoalesceResult r;
  const std::uint32_t sector_in_line_mask = (1u << spl_shift) - 1;
  std::uint64_t prev_addr = ~0ull;
  std::uint64_t prev_sector = ~0ull;
  std::uint64_t prev_line = ~0ull;
  for (std::uint32_t l = 0; l < lanes; ++l) {
    const std::uint64_t addr = lane_addrs[l];
    if (addr == prev_addr) continue;
    prev_addr = addr;
    ++r.distinct_addrs;
    const std::uint64_t sector = addr >> kSectorShift;
    if (sector == prev_sector) continue;
    prev_sector = sector;
    ++r.sectors;
    const std::uint64_t line = sector >> spl_shift;
    const std::uint32_t bit =
        1u << (static_cast<std::uint32_t>(sector) & sector_in_line_mask);
    if (line == prev_line) {
      line_out[r.lines - 1].mask |= bit;
    } else {
      line_out[r.lines++] = {line, bit};
      prev_line = line;
    }
  }
  return r;
}

class MemorySim {
 public:
  explicit MemorySim(const DeviceSpec& spec);

  // One entry of the allocation table. The bump allocator never reuses
  // addresses, so a freed region keeps its entry with live = false — a
  // later access to its address range is an exact use-after-free.
  // Host-initialization marks (cudaMemcpy/cudaMemset modeling) are kept
  // here rather than in the sanitizer so that engines may mark buffers in
  // their constructors regardless of when (or whether) the sanitizer is
  // enabled on the owning GpuSim.
  struct Region {
    std::uint64_t base = 0;
    std::uint64_t bytes = 0;
    std::uint32_t elem_bytes = 1;
    std::string name;
    bool live = true;
    bool read_only = false;
    bool fully_host_init = false;
    // Set when an uncorrectable injected bit-flip hit this region (gfi);
    // recovery charges a re-upload for poisoned read-only data and clears
    // the mark (see core/recovery.hpp).
    bool poisoned = false;
    // Host-initialized byte ranges [begin, end), absolute addresses,
    // deduplicated on insert (engines re-mark the same seed slot per run).
    std::vector<std::pair<std::uint64_t, std::uint64_t>> host_init;

    std::uint64_t end() const { return base + bytes; }
    std::uint64_t element_of(std::uint64_t addr) const {
      return (addr - base) / (elem_bytes ? elem_bytes : 1);
    }
    bool host_initialized(std::uint64_t begin_addr,
                          std::uint64_t end_addr) const;
  };

  // Reserves a 128-byte-aligned region of the simulated address space and
  // records it in the allocation table.
  std::uint64_t allocate(std::uint64_t bytes, std::string name = {},
                         std::uint32_t elem_bytes = 1);

  // --- allocation-table maintenance (sanitizer support) --------------------
  // Marks the region at `base` dead (simulated cudaFree). Host storage and
  // the address range stay reserved, so stale accesses are detectable.
  void free_region(std::uint64_t base);
  // Marks the region at `base` immutable from device code (e.g. the CSR
  // arrays shared read-only across QueryBatch streams).
  void mark_read_only(std::uint64_t base, bool read_only = true);
  // Records [begin_addr, end_addr) as initialized by a host transfer.
  void mark_host_initialized(std::uint64_t begin_addr, std::uint64_t end_addr);
  // --- fault-injection poison tracking (gfi) -------------------------------
  // Marks the region containing `addr` as hit by an uncorrectable flip.
  void mark_poisoned(std::uint64_t addr);
  // Bytes of live read-only regions currently poisoned: the data a retry
  // must re-upload (mutable buffers are re-initialized by the attempt).
  std::uint64_t poisoned_read_only_bytes() const;
  // Clears every poison mark (after the re-upload has been charged).
  void clear_poison();
  // True when the region containing `addr` is flagged poisoned. Checkpoint
  // snapshots consult this (core/checkpoint.hpp) so a corrupt bound never
  // leaks into a resume.
  bool region_poisoned(std::uint64_t addr) const;
  // Clears one region's mark: a retry attempt re-initializes its mutable
  // buffers from scratch, so their stale poison (which the bulk
  // clear_poison() above only reaches when read-only data was also hit)
  // must not taint the fresh attempt's checkpoints.
  void clear_region_poison(std::uint64_t addr);
  // Region containing `addr`, or nullptr. Regions are base-sorted by
  // construction (bump allocation), so this is a binary search.
  const Region* find_region(std::uint64_t addr) const;
  // Index variant for shadow-state bookkeeping; returns npos when unmapped.
  static constexpr std::size_t kNoRegion = ~static_cast<std::size_t>(0);
  std::size_t find_region_index(std::uint64_t addr) const;
  const std::vector<Region>& regions() const { return regions_; }

  struct AccessResult {
    std::uint32_t transactions = 0;  // distinct 32B sectors touched
    std::uint32_t hits = 0;          // sectors found in the SM's L1
    std::uint32_t l2_hits = 0;       // L1 misses served by the shared L2
    std::uint32_t dram_sectors = 0;  // sectors that went all the way out
  };

  // One warp memory instruction on `sm_id` touching the given lane
  // addresses (one per active lane, at most warp_size entries).
  // `cached` routes the probe through the SM's L1 (loads/stores); atomics
  // pass cached = false — they bypass L1 and resolve in the shared L2
  // (as on Volta/Turing), falling through to DRAM on an L2 miss.
  AccessResult access(int sm_id, std::span<const std::uint64_t> addresses,
                      bool cached);

  // Direct handles for GpuSim's two-pass replay: each SM's L1 is private
  // state (shards replay concurrently); the L2 is shared and must only be
  // probed from the serial canonical-order pass.
  SectoredCache& l1(int sm_id);
  SectoredCache& l2_cache() { return l2_; }

  // log2(sectors per cache line) of the device's caches — the grouping
  // shift coalesce_warp_lanes needs. L1s and the L2 share one line size.
  std::uint32_t spl_shift() const { return spl_shift_; }

  void reset_caches();

 private:
  std::uint64_t next_address_ = 4096;
  std::uint32_t spl_shift_ = 2;
  std::vector<SectoredCache> l1_;
  SectoredCache l2_;
  std::vector<Region> regions_;
};

}  // namespace rdbs::gpusim
