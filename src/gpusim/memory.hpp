// Global-memory model: a flat simulated address space plus one sectored L1
// cache per SM. Warp-level accesses are coalesced into 32-byte sector
// transactions exactly as the hardware's LSU would: lanes touching the same
// sector share one transaction.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gpusim/cache.hpp"
#include "gpusim/device.hpp"

namespace rdbs::gpusim {

class MemorySim {
 public:
  explicit MemorySim(const DeviceSpec& spec);

  // Reserves a 128-byte-aligned region of the simulated address space.
  std::uint64_t allocate(std::uint64_t bytes);

  struct AccessResult {
    std::uint32_t transactions = 0;  // distinct 32B sectors touched
    std::uint32_t hits = 0;          // sectors found in the SM's L1
    std::uint32_t l2_hits = 0;       // L1 misses served by the shared L2
    std::uint32_t dram_sectors = 0;  // sectors that went all the way out
  };

  // One warp memory instruction on `sm_id` touching the given lane
  // addresses (one per active lane, at most warp_size entries).
  // `cached` routes the probe through the SM's L1 (loads/stores); atomics
  // pass cached = false — they bypass L1 and resolve in the shared L2
  // (as on Volta/Turing), falling through to DRAM on an L2 miss.
  AccessResult access(int sm_id, std::span<const std::uint64_t> addresses,
                      bool cached);

  // Direct handles for GpuSim's two-pass replay: each SM's L1 is private
  // state (shards replay concurrently); the L2 is shared and must only be
  // probed from the serial canonical-order pass.
  SectoredCache& l1(int sm_id);
  SectoredCache& l2_cache() { return l2_; }

  void reset_caches();

 private:
  std::uint64_t next_address_ = 4096;
  std::vector<SectoredCache> l1_;
  SectoredCache l2_;
};

}  // namespace rdbs::gpusim
