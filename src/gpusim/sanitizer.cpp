#include "gpusim/sanitizer.hpp"

#include <algorithm>

#include "common/macros.hpp"
#include "gpusim/cache.hpp"

namespace rdbs::gpusim {

namespace {

constexpr std::uint64_t kSectorBytes = SectoredCache::kSectorBytes;

// Returns a task from `pair` different from `task`, or kNoTask.
std::uint32_t other_than(std::uint32_t t1, std::uint32_t t2,
                         std::uint32_t task) {
  if (t1 != HazardRecord::kNoTask && t1 != task) return t1;
  if (t2 != HazardRecord::kNoTask && t2 != task) return t2;
  return HazardRecord::kNoTask;
}

}  // namespace

const char* hazard_kind_name(HazardRecord::Kind kind) {
  switch (kind) {
    case HazardRecord::Kind::kOutOfBounds: return "out-of-bounds";
    case HazardRecord::Kind::kUseAfterFree: return "use-after-free";
    case HazardRecord::Kind::kUninitRead: return "uninit-read";
    case HazardRecord::Kind::kRaceWW: return "race-ww";
    case HazardRecord::Kind::kRaceRW: return "race-rw";
    case HazardRecord::Kind::kAtomicMix: return "atomic-mix";
    case HazardRecord::Kind::kReadOnlyWrite: return "read-only-write";
    case HazardRecord::Kind::kCrossStreamRace: return "cross-stream-race";
    case HazardRecord::Kind::kNoProgress: return "no-progress";
  }
  return "unknown";
}

Sanitizer::VectorClock& Sanitizer::clock_for(int stream) {
  const auto index = static_cast<std::size_t>(stream < 0 ? 0 : stream);
  if (stream_clocks_.size() <= index) stream_clocks_.resize(index + 1);
  return stream_clocks_[index];
}

void Sanitizer::join(VectorClock& into, const VectorClock& from) {
  if (into.size() < from.size()) into.resize(from.size(), 0);
  for (std::size_t i = 0; i < from.size(); ++i) {
    into[i] = std::max(into[i], from[i]);
  }
}

void Sanitizer::begin_launch(std::string_view label, std::uint64_t ordinal,
                             int stream) {
  if (label.empty()) {
    current_kernel_ = "kernel@" + std::to_string(ordinal);
  } else {
    current_kernel_.assign(label);
  }
  launch_stream_ = stream;
  // The async launch happens-after everything the host has observed so far
  // (join), then opens a new epoch on its own stream (tick). Host issue
  // order alone does NOT order two streams: the host clock only advances at
  // sync points (host_sync / host_transfer / host_wait / full_fence).
  VectorClock& clock = clock_for(stream);
  join(clock, host_clock_);
  const auto self = static_cast<std::size_t>(stream < 0 ? 0 : stream);
  if (clock.size() <= self) clock.resize(self + 1, 0);
  ++clock[self];
  launch_vc_ = clock;
  launch_waits_.clear();
}

void Sanitizer::host_sync(int stream) {
  join(host_clock_, clock_for(stream));
}

void Sanitizer::host_transfer(int stream) {
  VectorClock& clock = clock_for(stream);
  join(clock, host_clock_);
  join(host_clock_, clock);
}

void Sanitizer::host_wait(int stream) {
  VectorClock& clock = clock_for(stream);
  join(clock, host_clock_);
  join(host_clock_, clock);
}

void Sanitizer::full_fence() {
  for (VectorClock& clock : stream_clocks_) join(host_clock_, clock);
  for (VectorClock& clock : stream_clocks_) join(clock, host_clock_);
}

void Sanitizer::stream_stall(int stream) {
  VectorClock& clock = clock_for(stream);
  const auto self = static_cast<std::size_t>(stream < 0 ? 0 : stream);
  if (clock.size() <= self) clock.resize(self + 1, 0);
  ++clock[self];
}

void Sanitizer::note_wait(std::uint32_t task, std::uint64_t addr) {
  launch_waits_.push_back(PendingWait{task, addr});
}

void Sanitizer::report_hazard(HazardRecord::Kind kind,
                              const std::string& buffer, std::uint64_t element,
                              std::uint32_t first_task,
                              std::uint32_t second_task, int first_stream,
                              int second_stream) {
  std::string key;
  key.reserve(current_kernel_.size() + buffer.size() + 32);
  key += static_cast<char>('0' + static_cast<int>(kind));
  key += '|';
  key += current_kernel_;
  key += '|';
  key += buffer;
  key += '|';
  key += std::to_string(element);
  key += '|';
  key += std::to_string(first_stream);
  key += '|';
  key += std::to_string(second_stream);
  const auto [it, inserted] = dedup_.emplace(std::move(key), hazards_.size());
  if (!inserted) {
    ++hazards_[it->second].count;
    return;
  }
  HazardRecord record;
  record.kind = kind;
  record.kernel = current_kernel_;
  record.buffer = buffer;
  record.element = element;
  record.first_task = first_task;
  record.second_task = second_task;
  record.first_stream = first_stream;
  record.second_stream = second_stream;
  hazards_.push_back(std::move(record));
}

std::uint64_t Sanitizer::checked_index(const std::string& buffer_name,
                                       std::uint64_t index,
                                       std::uint64_t size,
                                       std::uint32_t task) {
  if (index < size) return index;
  report_hazard(HazardRecord::Kind::kOutOfBounds, buffer_name, index, task,
                HazardRecord::kNoTask);
  return size == 0 ? 0 : size - 1;
}

std::vector<std::uint64_t>& Sanitizer::shadow_for(std::size_t region_index) {
  if (shadow_.size() <= region_index) shadow_.resize(region_index + 1);
  std::vector<std::uint64_t>& bits = shadow_[region_index];
  if (bits.empty()) {
    const std::uint64_t sectors =
        (memory_->regions()[region_index].bytes + kSectorBytes - 1) /
        kSectorBytes;
    bits.assign(static_cast<std::size_t>((sectors + 63) / 64), 0);
  }
  return bits;
}

void Sanitizer::races_for_address(std::uint64_t addr,
                                  const AddressState& state) {
  // Only plain stores create hazards; see header. The pairs hold the first
  // two distinct tasks per kind group in canonical order, which is enough
  // to always exhibit one cross-task pair when it exists.
  const TaskPair& ps = state.plain_store;
  if (ps.t1 == HazardRecord::kNoTask) return;
  const MemorySim::Region* region = memory_->find_region(addr);
  static const std::string kUnknown = "?";
  const std::string& buffer = region ? region->name : kUnknown;
  const std::uint64_t element = region ? region->element_of(addr) : addr;
  if (ps.t2 != HazardRecord::kNoTask) {
    report_hazard(HazardRecord::Kind::kRaceWW, buffer, element, ps.t1, ps.t2);
  }
  const std::uint32_t loader = other_than(state.plain_load.t1,
                                          state.plain_load.t2, ps.t1);
  if (loader != HazardRecord::kNoTask) {
    report_hazard(HazardRecord::Kind::kRaceRW, buffer, element, ps.t1, loader);
  }
  const std::uint32_t synced = other_than(state.synced.t1, state.synced.t2,
                                          ps.t1);
  if (synced != HazardRecord::kNoTask) {
    report_hazard(HazardRecord::Kind::kAtomicMix, buffer, element, ps.t1,
                  synced);
  }
}

void Sanitizer::cross_stream_scan() {
  const auto self = static_cast<std::size_t>(
      launch_stream_ < 0 ? 0 : launch_stream_);
  // A prior access on stream T at epoch c is ordered before this launch iff
  // the launch's clock has seen it (launch_vc_[T] >= c); a newer epoch is
  // concurrent. Same-stream accesses are always ordered (program order).
  const auto unordered = [&](const std::vector<StreamEpoch>& epochs,
                             std::size_t t) {
    if (t == self || t >= epochs.size() || epochs[t].clock == 0) return false;
    const std::uint32_t seen =
        t < launch_vc_.size() ? launch_vc_[t] : 0;
    return epochs[t].clock > seen;
  };
  for (const std::size_t region_index : touched_regions_) {
    const RegionUse& use = launch_regions_[region_index];
    RegionEpochs& eps = epochs_[region_index];
    const std::string& name = memory_->regions()[region_index].name;
    const std::size_t streams = std::max(
        {eps.writes.size(), eps.reads.size(), eps.syncs.size()});
    for (std::size_t t = 0; t < streams; ++t) {
      if (t == self) continue;
      // Conflicts require a plain write on one side; atomics and volatiles
      // pair safely with each other across streams, as within a launch.
      if (use.plain_write) {
        if (unordered(eps.writes, t)) {
          report_hazard(HazardRecord::Kind::kCrossStreamRace, name,
                        use.write_elem, HazardRecord::kNoTask,
                        HazardRecord::kNoTask, static_cast<int>(t),
                        launch_stream_);
        }
        if (unordered(eps.reads, t)) {
          report_hazard(HazardRecord::Kind::kCrossStreamRace, name,
                        use.write_elem, HazardRecord::kNoTask,
                        HazardRecord::kNoTask, static_cast<int>(t),
                        launch_stream_);
        }
        if (unordered(eps.syncs, t)) {
          report_hazard(HazardRecord::Kind::kCrossStreamRace, name,
                        use.write_elem, HazardRecord::kNoTask,
                        HazardRecord::kNoTask, static_cast<int>(t),
                        launch_stream_);
        }
      }
      if (use.plain_read && unordered(eps.writes, t)) {
        report_hazard(HazardRecord::Kind::kCrossStreamRace, name,
                      use.read_elem, HazardRecord::kNoTask,
                      HazardRecord::kNoTask, static_cast<int>(t),
                      launch_stream_);
      }
      if (use.has_sync && unordered(eps.writes, t)) {
        report_hazard(HazardRecord::Kind::kCrossStreamRace, name,
                      use.sync_elem, HazardRecord::kNoTask,
                      HazardRecord::kNoTask, static_cast<int>(t),
                      launch_stream_);
      }
    }
    // Fold this launch into the epoch shadow (after the checks: a launch
    // does not race with itself).
    const std::uint32_t epoch =
        self < launch_vc_.size() ? launch_vc_[self] : 0;
    const auto touch = [&](std::vector<StreamEpoch>& epochs,
                           std::uint64_t element) {
      if (epochs.size() <= self) epochs.resize(self + 1);
      epochs[self].clock = epoch;
      epochs[self].element = element;
    };
    if (use.plain_write) touch(eps.writes, use.write_elem);
    if (use.plain_read) touch(eps.reads, use.read_elem);
    if (use.has_sync) touch(eps.syncs, use.sync_elem);
  }
}

void Sanitizer::check_no_progress() {
  static const std::string kUnknown = "?";
  for (const PendingWait& wait : launch_waits_) {
    const std::size_t region_index = memory_->find_region_index(wait.addr);
    if (region_index == MemorySim::kNoRegion) {
      report_hazard(HazardRecord::Kind::kNoProgress, kUnknown, wait.addr,
                    wait.task, HazardRecord::kNoTask, launch_stream_);
      continue;
    }
    const MemorySim::Region& region = memory_->regions()[region_index];
    const std::uint64_t element = region.element_of(wait.addr);
    const std::uint64_t end_addr =
        std::min(wait.addr + region.elem_bytes, region.end());
    if (region.host_initialized(wait.addr, end_addr)) continue;
    // Satisfied iff some device write — this launch's (shadow bits are
    // already set by the scan's lane loop), any earlier launch's on any
    // stream, or a host transfer above — has touched the waited-on sector.
    // Functional execution is host-serial, so every value a spin consumes
    // was produced by now; an untouched sector can never wake the waiter.
    std::vector<std::uint64_t>& bits = shadow_for(region_index);
    bool written = true;
    for (std::uint64_t s = (wait.addr - region.base) / kSectorBytes;
         s <= (end_addr - 1 - region.base) / kSectorBytes; ++s) {
      if (!(bits[static_cast<std::size_t>(s / 64)] & (1ull << (s % 64)))) {
        written = false;
        break;
      }
    }
    if (!written) {
      report_hazard(HazardRecord::Kind::kNoProgress, region.name, element,
                    wait.task, HazardRecord::kNoTask, launch_stream_);
    }
  }
  launch_waits_.clear();
}

void Sanitizer::scan_launch(const LaunchTrace& trace,
                            std::span<const TaskRecord> tasks) {
  launch_state_.clear();
  launch_regions_.clear();
  touched_regions_.clear();
  // Race-candidate addresses in canonical discovery order, so the final
  // race pass (and therefore the report) is independent of the hash map's
  // iteration order.
  std::vector<std::uint64_t> touched;

  for (std::uint32_t t = 0; t < tasks.size(); ++t) {
    LaunchTrace::OpCursor cursor = trace.task_cursor(tasks[t]);
    LaunchTrace::OpView op;
    while (cursor.next(op)) {
      for (std::uint32_t l = 0; l < op.lanes; ++l) {
        const std::uint64_t addr = op.addrs[l];
        const std::size_t region_index = memory_->find_region_index(addr);
        if (region_index == MemorySim::kNoRegion) continue;
        const MemorySim::Region& region = memory_->regions()[region_index];
        const std::uint64_t element = region.element_of(addr);
        if (!region.live) {
          report_hazard(HazardRecord::Kind::kUseAfterFree, region.name,
                        element, t, HazardRecord::kNoTask);
        }
        const std::uint64_t end_addr =
            std::min(addr + region.elem_bytes, region.end());

        if (op.is_write()) {
          if (region.read_only) {
            report_hazard(HazardRecord::Kind::kReadOnlyWrite, region.name,
                          element, t, HazardRecord::kNoTask);
          }
          std::vector<std::uint64_t>& bits = shadow_for(region_index);
          for (std::uint64_t s = (addr - region.base) / kSectorBytes;
               s <= (end_addr - 1 - region.base) / kSectorBytes; ++s) {
            bits[static_cast<std::size_t>(s / 64)] |= 1ull << (s % 64);
          }
        } else if (!region.host_initialized(addr, end_addr)) {
          std::vector<std::uint64_t>& bits = shadow_for(region_index);
          for (std::uint64_t s = (addr - region.base) / kSectorBytes;
               s <= (end_addr - 1 - region.base) / kSectorBytes; ++s) {
            if (!(bits[static_cast<std::size_t>(s / 64)] &
                  (1ull << (s % 64)))) {
              report_hazard(HazardRecord::Kind::kUninitRead, region.name,
                            element, t, HazardRecord::kNoTask);
              break;
            }
          }
        }

        // Race bookkeeping. Atomics and volatile accesses group together:
        // they are safe against each other, hazardous against plain stores.
        AddressState& state = launch_state_[addr];
        if (state.plain_store.t1 == HazardRecord::kNoTask &&
            state.plain_load.t1 == HazardRecord::kNoTask &&
            state.synced.t1 == HazardRecord::kNoTask) {
          touched.push_back(addr);
        }
        if (op.is_plain_store()) {
          state.plain_store.add(t);
        } else if (op.kind == TraceOp::kLoad) {
          state.plain_load.add(t);
        } else {
          state.synced.add(t);
        }

        // Cross-stream epoch bookkeeping (buffer granularity). Read-only
        // regions cannot race (writes to them are already flagged above);
        // freed regions are covered by the use-after-free report.
        if (region.live && !region.read_only) {
          RegionUse& use = launch_regions_[region_index];
          if (!use.plain_write && !use.plain_read && !use.has_sync) {
            touched_regions_.push_back(region_index);
          }
          if (op.is_plain_store()) {
            if (!use.plain_write) {
              use.plain_write = true;
              use.write_elem = element;
            }
          } else if (op.kind == TraceOp::kLoad) {
            if (!use.plain_read) {
              use.plain_read = true;
              use.read_elem = element;
            }
          } else if (!use.has_sync) {
            use.has_sync = true;
            use.sync_elem = element;
          }
        }
      }
    }
  }

  for (const std::uint64_t addr : touched) {
    races_for_address(addr, launch_state_[addr]);
  }
  cross_stream_scan();
  check_no_progress();
}

std::string Sanitizer::report() const {
  std::string out;
  for (const HazardRecord& hazard : hazards_) {
    out += "[gsan] ";
    out += hazard_kind_name(hazard.kind);
    out += ": kernel=";
    out += hazard.kernel;
    out += " buffer=";
    out += hazard.buffer;
    out += " elem=";
    out += std::to_string(hazard.element);
    if (hazard.first_stream != HazardRecord::kNoStream) {
      out += " stream=";
      out += std::to_string(hazard.first_stream);
      if (hazard.second_stream != HazardRecord::kNoStream) {
        out += '/';
        out += std::to_string(hazard.second_stream);
      }
    }
    if (hazard.first_task != HazardRecord::kNoTask) {
      out += " warp=";
      out += std::to_string(hazard.first_task);
      if (hazard.second_task != HazardRecord::kNoTask) {
        out += '/';
        out += std::to_string(hazard.second_task);
      }
    }
    if (hazard.count > 1) {
      out += " x";
      out += std::to_string(hazard.count);
    }
    out += '\n';
  }
  return out;
}

void Sanitizer::clear() {
  hazards_.clear();
  dedup_.clear();
}

}  // namespace rdbs::gpusim
