#include "gpusim/sanitizer.hpp"

#include <algorithm>

#include "common/macros.hpp"
#include "gpusim/cache.hpp"

namespace rdbs::gpusim {

namespace {

constexpr std::uint64_t kSectorBytes = SectoredCache::kSectorBytes;

// Returns a task from `pair` different from `task`, or kNoTask.
std::uint32_t other_than(std::uint32_t t1, std::uint32_t t2,
                         std::uint32_t task) {
  if (t1 != HazardRecord::kNoTask && t1 != task) return t1;
  if (t2 != HazardRecord::kNoTask && t2 != task) return t2;
  return HazardRecord::kNoTask;
}

}  // namespace

const char* hazard_kind_name(HazardRecord::Kind kind) {
  switch (kind) {
    case HazardRecord::Kind::kOutOfBounds: return "out-of-bounds";
    case HazardRecord::Kind::kUseAfterFree: return "use-after-free";
    case HazardRecord::Kind::kUninitRead: return "uninit-read";
    case HazardRecord::Kind::kRaceWW: return "race-ww";
    case HazardRecord::Kind::kRaceRW: return "race-rw";
    case HazardRecord::Kind::kAtomicMix: return "atomic-mix";
    case HazardRecord::Kind::kReadOnlyWrite: return "read-only-write";
  }
  return "unknown";
}

void Sanitizer::begin_launch(std::string_view label, std::uint64_t ordinal) {
  if (label.empty()) {
    current_kernel_ = "kernel@" + std::to_string(ordinal);
  } else {
    current_kernel_.assign(label);
  }
}

void Sanitizer::report_hazard(HazardRecord::Kind kind,
                              const std::string& buffer, std::uint64_t element,
                              std::uint32_t first_task,
                              std::uint32_t second_task) {
  std::string key;
  key.reserve(current_kernel_.size() + buffer.size() + 24);
  key += static_cast<char>('0' + static_cast<int>(kind));
  key += '|';
  key += current_kernel_;
  key += '|';
  key += buffer;
  key += '|';
  key += std::to_string(element);
  const auto [it, inserted] = dedup_.emplace(std::move(key), hazards_.size());
  if (!inserted) {
    ++hazards_[it->second].count;
    return;
  }
  HazardRecord record;
  record.kind = kind;
  record.kernel = current_kernel_;
  record.buffer = buffer;
  record.element = element;
  record.first_task = first_task;
  record.second_task = second_task;
  hazards_.push_back(std::move(record));
}

std::uint64_t Sanitizer::checked_index(const std::string& buffer_name,
                                       std::uint64_t index,
                                       std::uint64_t size,
                                       std::uint32_t task) {
  if (index < size) return index;
  report_hazard(HazardRecord::Kind::kOutOfBounds, buffer_name, index, task,
                HazardRecord::kNoTask);
  return size == 0 ? 0 : size - 1;
}

std::vector<std::uint64_t>& Sanitizer::shadow_for(std::size_t region_index) {
  if (shadow_.size() <= region_index) shadow_.resize(region_index + 1);
  std::vector<std::uint64_t>& bits = shadow_[region_index];
  if (bits.empty()) {
    const std::uint64_t sectors =
        (memory_->regions()[region_index].bytes + kSectorBytes - 1) /
        kSectorBytes;
    bits.assign(static_cast<std::size_t>((sectors + 63) / 64), 0);
  }
  return bits;
}

void Sanitizer::races_for_address(std::uint64_t addr,
                                  const AddressState& state) {
  // Only plain stores create hazards; see header. The pairs hold the first
  // two distinct tasks per kind group in canonical order, which is enough
  // to always exhibit one cross-task pair when it exists.
  const TaskPair& ps = state.plain_store;
  if (ps.t1 == HazardRecord::kNoTask) return;
  const MemorySim::Region* region = memory_->find_region(addr);
  static const std::string kUnknown = "?";
  const std::string& buffer = region ? region->name : kUnknown;
  const std::uint64_t element = region ? region->element_of(addr) : addr;
  if (ps.t2 != HazardRecord::kNoTask) {
    report_hazard(HazardRecord::Kind::kRaceWW, buffer, element, ps.t1, ps.t2);
  }
  const std::uint32_t loader = other_than(state.plain_load.t1,
                                          state.plain_load.t2, ps.t1);
  if (loader != HazardRecord::kNoTask) {
    report_hazard(HazardRecord::Kind::kRaceRW, buffer, element, ps.t1, loader);
  }
  const std::uint32_t synced = other_than(state.synced.t1, state.synced.t2,
                                          ps.t1);
  if (synced != HazardRecord::kNoTask) {
    report_hazard(HazardRecord::Kind::kAtomicMix, buffer, element, ps.t1,
                  synced);
  }
}

void Sanitizer::scan_launch(const LaunchTrace& trace,
                            std::span<const TaskRecord> tasks) {
  launch_state_.clear();
  // Race-candidate addresses in canonical discovery order, so the final
  // race pass (and therefore the report) is independent of the hash map's
  // iteration order.
  std::vector<std::uint64_t> touched;

  for (std::uint32_t t = 0; t < tasks.size(); ++t) {
    LaunchTrace::OpCursor cursor = trace.task_cursor(tasks[t]);
    LaunchTrace::OpView op;
    while (cursor.next(op)) {
      for (std::uint32_t l = 0; l < op.lanes; ++l) {
        const std::uint64_t addr = op.addrs[l];
        const std::size_t region_index = memory_->find_region_index(addr);
        if (region_index == MemorySim::kNoRegion) continue;
        const MemorySim::Region& region = memory_->regions()[region_index];
        const std::uint64_t element = region.element_of(addr);
        if (!region.live) {
          report_hazard(HazardRecord::Kind::kUseAfterFree, region.name,
                        element, t, HazardRecord::kNoTask);
        }
        const std::uint64_t end_addr =
            std::min(addr + region.elem_bytes, region.end());

        if (op.is_write()) {
          if (region.read_only) {
            report_hazard(HazardRecord::Kind::kReadOnlyWrite, region.name,
                          element, t, HazardRecord::kNoTask);
          }
          std::vector<std::uint64_t>& bits = shadow_for(region_index);
          for (std::uint64_t s = (addr - region.base) / kSectorBytes;
               s <= (end_addr - 1 - region.base) / kSectorBytes; ++s) {
            bits[static_cast<std::size_t>(s / 64)] |= 1ull << (s % 64);
          }
        } else if (!region.host_initialized(addr, end_addr)) {
          std::vector<std::uint64_t>& bits = shadow_for(region_index);
          for (std::uint64_t s = (addr - region.base) / kSectorBytes;
               s <= (end_addr - 1 - region.base) / kSectorBytes; ++s) {
            if (!(bits[static_cast<std::size_t>(s / 64)] &
                  (1ull << (s % 64)))) {
              report_hazard(HazardRecord::Kind::kUninitRead, region.name,
                            element, t, HazardRecord::kNoTask);
              break;
            }
          }
        }

        // Race bookkeeping. Atomics and volatile accesses group together:
        // they are safe against each other, hazardous against plain stores.
        AddressState& state = launch_state_[addr];
        if (state.plain_store.t1 == HazardRecord::kNoTask &&
            state.plain_load.t1 == HazardRecord::kNoTask &&
            state.synced.t1 == HazardRecord::kNoTask) {
          touched.push_back(addr);
        }
        if (op.is_plain_store()) {
          state.plain_store.add(t);
        } else if (op.kind == TraceOp::kLoad) {
          state.plain_load.add(t);
        } else {
          state.synced.add(t);
        }
      }
    }
  }

  for (const std::uint64_t addr : touched) {
    races_for_address(addr, launch_state_[addr]);
  }
}

std::string Sanitizer::report() const {
  std::string out;
  for (const HazardRecord& hazard : hazards_) {
    out += "[gsan] ";
    out += hazard_kind_name(hazard.kind);
    out += ": kernel=";
    out += hazard.kernel;
    out += " buffer=";
    out += hazard.buffer;
    out += " elem=";
    out += std::to_string(hazard.element);
    if (hazard.first_task != HazardRecord::kNoTask) {
      out += " warp=";
      out += std::to_string(hazard.first_task);
      if (hazard.second_task != HazardRecord::kNoTask) {
        out += '/';
        out += std::to_string(hazard.second_task);
      }
    }
    if (hazard.count > 1) {
      out += " x";
      out += std::to_string(hazard.count);
    }
    out += '\n';
  }
  return out;
}

void Sanitizer::clear() {
  hazards_.clear();
  dedup_.clear();
}

}  // namespace rdbs::gpusim
