#include "gpusim/sim.hpp"

namespace rdbs::gpusim {

namespace {
// Issue-visible cycles added per sector that misses a cache level: the
// latency itself is assumed hidden by other resident warps; these model the
// extra pipeline occupancy of replays, while DRAM *throughput* is enforced
// separately by the per-kernel bandwidth floor.
constexpr std::uint64_t kL2ReplayCycles = 2;    // L1 miss served by L2
constexpr std::uint64_t kDramReplayCycles = 6;  // L2 miss, full DRAM trip
}  // namespace

void WarpCtx::alu(std::uint32_t instructions, std::uint32_t active_lanes) {
  RDBS_DCHECK(active_lanes <= 32);
  cycles_ += instructions;
  sim_.counters_.alu_instructions += instructions;
  sim_.counters_.active_lane_ops +=
      static_cast<std::uint64_t>(instructions) * active_lanes;
  sim_.counters_.issued_lane_ops += static_cast<std::uint64_t>(instructions) * 32;
}

void WarpCtx::charge_memory(std::span<const std::uint64_t> addresses,
                            bool is_store, std::uint32_t active_lanes) {
  Counters& c = sim_.counters_;
  const auto result = sim_.memory_.access(sm_id_, addresses, /*cached=*/true);
  if (is_store) {
    ++c.inst_executed_global_stores;
  } else {
    ++c.inst_executed_global_loads;
  }
  c.l1_sector_accesses += result.transactions;
  c.l1_sector_hits += result.hits;
  const std::uint32_t l1_misses = result.transactions - result.hits;
  c.l2_sector_accesses += l1_misses;
  c.l2_sector_hits += result.l2_hits;
  c.memory_transactions += result.transactions;
  // Stores write through L1 into the write-back L2; DRAM traffic occurs
  // only for sectors the L2 could not serve.
  const std::uint64_t dram = static_cast<std::uint64_t>(result.dram_sectors) *
                             SectoredCache::kSectorBytes;
  c.dram_bytes += dram;
  sim_.launch_dram_bytes_ += dram;
  cycles_ += result.transactions + result.l2_hits * kL2ReplayCycles +
             result.dram_sectors * kDramReplayCycles;
  c.active_lane_ops += active_lanes;
  c.issued_lane_ops += 32;
}

void WarpCtx::charge_atomic(std::span<const std::uint64_t> addresses,
                            std::uint32_t active_lanes) {
  Counters& c = sim_.counters_;
  // Atomics resolve at L2: they bypass L1 but benefit from L2 residency;
  // only L2 misses travel to DRAM.
  const auto result = sim_.memory_.access(sm_id_, addresses, /*cached=*/false);
  ++c.inst_executed_atomics;
  c.memory_transactions += result.transactions;
  c.l2_sector_accesses += result.transactions;
  c.l2_sector_hits += result.l2_hits;
  const std::uint64_t dram = static_cast<std::uint64_t>(result.dram_sectors) *
                             SectoredCache::kSectorBytes;
  c.dram_bytes += dram;
  sim_.launch_dram_bytes_ += dram;
  // Same-address lanes serialize: lanes minus distinct addresses collide.
  std::uint32_t distinct = 0;
  std::array<std::uint64_t, 32> seen{};
  for (const std::uint64_t addr : addresses) {
    bool dup = false;
    for (std::uint32_t i = 0; i < distinct; ++i) {
      if (seen[i] == addr) {
        dup = true;
        break;
      }
    }
    if (!dup) seen[distinct++] = addr;
  }
  const auto conflicts =
      static_cast<std::uint32_t>(addresses.size()) - distinct;
  c.atomic_conflicts += conflicts;
  cycles_ += result.transactions + result.dram_sectors * kDramReplayCycles +
             conflicts * static_cast<std::uint32_t>(
                             sim_.spec_.atomic_conflict_cycles);
  c.active_lane_ops += active_lanes;
  c.issued_lane_ops += 32;
}

void WarpCtx::child_launch() {
  ++sim_.counters_.child_launches;
  ++sim_.launch_child_launches_;
  cycles_ += static_cast<std::uint64_t>(sim_.spec_.child_launch_us * 1e3 *
                                        sim_.spec_.clock_ghz);
}

void GpuSim::begin_launch(bool host_launch) {
  sm_cycles_.assign(static_cast<std::size_t>(spec_.num_sms), 0.0);
  sm_longest_task_.assign(static_cast<std::size_t>(spec_.num_sms), 0);
  launch_dram_bytes_ = 0;
  launch_child_launches_ = 0;
  if (host_launch) ++counters_.kernel_launches;
}

int GpuSim::pick_sm(Schedule schedule, std::uint64_t task_index,
                    int warps_per_block) {
  if (schedule == Schedule::kStatic) {
    const std::uint64_t block = task_index / static_cast<std::uint64_t>(
                                                 std::max(1, warps_per_block));
    return static_cast<int>(block % static_cast<std::uint64_t>(spec_.num_sms));
  }
  // Dynamic: least-loaded SM (persistent workers stealing from a shared
  // queue converge to exactly this assignment).
  int best = 0;
  for (int sm = 1; sm < spec_.num_sms; ++sm) {
    if (sm_cycles_[static_cast<std::size_t>(sm)] <
        sm_cycles_[static_cast<std::size_t>(best)]) {
      best = sm;
    }
  }
  return best;
}

void GpuSim::account_task(int sm, std::uint64_t cycles) {
  sm_cycles_[static_cast<std::size_t>(sm)] += static_cast<double>(cycles);
  sm_longest_task_[static_cast<std::size_t>(sm)] =
      std::max(sm_longest_task_[static_cast<std::size_t>(sm)], cycles);
}

LaunchResult GpuSim::end_launch(std::uint64_t tasks, bool host_launch) {
  LaunchResult result;
  result.tasks = tasks;
  double worst_sm_cycles = 0;
  for (int sm = 0; sm < spec_.num_sms; ++sm) {
    const auto i = static_cast<std::size_t>(sm);
    result.busy_cycles += sm_cycles_[i];
    // An SM retires its resident warps at `warp_schedulers` instructions
    // per cycle once enough warps are in flight; a single long warp is the
    // lower bound (no parallelism inside one warp).
    const double sm_time =
        std::max(sm_cycles_[i] / spec_.warp_schedulers,
                 static_cast<double>(sm_longest_task_[i]));
    worst_sm_cycles = std::max(worst_sm_cycles, sm_time);
  }
  const double compute_ms = spec_.cycles_to_ms(worst_sm_cycles);
  const double dram_ms =
      spec_.bytes_to_ms(static_cast<double>(launch_dram_bytes_));
  result.ms = std::max(compute_ms, dram_ms);
  if (host_launch) result.ms += spec_.kernel_launch_us * 1e-3;
  total_ms_ += result.ms;
  return result;
}

}  // namespace rdbs::gpusim
