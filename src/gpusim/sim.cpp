#include "gpusim/sim.hpp"

#include <bit>

#ifdef RDBS_PARALLEL
#include <omp.h>
#endif

// ThreadSanitizer cannot see the synchronization inside GCC's libgomp (team
// start and the implicit end-of-region barrier use futexes TSan does not
// intercept), which yields false positives on every parallel region. Under
// TSan the shard fan-out therefore runs on std::thread — create/join are
// fully intercepted — so the sanitizer checks the real invariant (shards
// share no mutable state) without runtime noise.
#if defined(__SANITIZE_THREAD__)
#define RDBS_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define RDBS_TSAN 1
#endif
#endif
#if defined(RDBS_PARALLEL) && defined(RDBS_TSAN)
#include <thread>
#endif

namespace rdbs::gpusim {

namespace {
// Issue-visible cycles added per sector that misses a cache level: the
// latency itself is assumed hidden by other resident warps; these model the
// extra pipeline occupancy of replays, while DRAM *throughput* is enforced
// separately by the per-kernel bandwidth floor.
constexpr std::uint64_t kL2ReplayCycles = 2;    // L1 miss served by L2
constexpr std::uint64_t kDramReplayCycles = 6;  // L2 miss, full DRAM trip

// Scheduling weight of one warp memory instruction. The dynamic (least-
// loaded SM) placement decision is made during the record phase, before the
// cache replay has run, so it keys on a cache-independent load estimate:
// ALU and child-launch cycles exactly, plus this flat per-memory-
// instruction charge (a typical partially-coalesced access: a few sector
// transactions plus some replay cycles). Placement therefore tracks task
// *size* (edge counts, instruction counts) — the quantity the paper's load-
// balancing experiments vary — while staying invariant under replay
// parallelism.
constexpr std::uint64_t kMemIssueWeight = 8;

int g_default_worker_threads = 0;
ReplayMode g_default_replay_mode = ReplayMode::kAuto;
TraceLayout g_default_trace_layout = TraceLayout::kCompressed;

// Launches below this many memory ops replay their L1 shards serially even
// when worker threads are available: the OpenMP fork/join barrier costs more
// than the shards themselves (the road-network workloads issue thousands of
// tiny launches, where the barrier alone regressed parallel runs below 1x).
constexpr std::uint32_t kParallelMinOps = 4096;

// L2 streams below this size take the direct in-order pass; above it the
// requests are counting-sorted by cache set first (better set locality, one
// bin per set touched once). Both orders are bit-identical — see
// replay_launch.
constexpr std::size_t kBinnedMinL2Requests = 4096;

// Seed-pipeline insertion sort of the first `n` lane addresses (n <= 32).
// Used only by replay_shard_seed; the overhauled path sorts inside
// coalesce_warp_lanes instead.
inline void seed_sort_addresses(std::uint64_t* a, std::uint32_t n) {
  for (std::uint32_t i = 1; i < n; ++i) {
    const std::uint64_t v = a[i];
    std::uint32_t j = i;
    while (j > 0 && a[j - 1] > v) {
      a[j] = a[j - 1];
      --j;
    }
    a[j] = v;
  }
}
}  // namespace

// --- WarpCtx (record phase) --------------------------------------------------

void WarpCtx::alu(std::uint32_t instructions, std::uint32_t active_lanes) {
  RDBS_DCHECK(active_lanes <= 32);
  TaskRecord& rec = sim_.task_records_[task_];
  rec.cycles += instructions;
  rec.weight += instructions;
  sim_.counters_.alu_instructions += instructions;
  sim_.counters_.active_lane_ops +=
      static_cast<std::uint64_t>(instructions) * active_lanes;
  sim_.counters_.issued_lane_ops += static_cast<std::uint64_t>(instructions) * 32;
}

std::uint64_t* WarpCtx::trace_slots(std::size_t lanes) {
  return sim_.fused_launch_ ? sim_.fused_lanes_.data()
                            : sim_.trace_.lane_slots(lanes);
}

void WarpCtx::record_mem(std::uint8_t kind, std::uint32_t lanes) {
  RDBS_DCHECK(active_task_valid());
  Counters& c = sim_.counters_;
  switch (kind) {
    case TraceOp::kLoad: ++c.inst_executed_global_loads; break;
    case TraceOp::kStore: ++c.inst_executed_global_stores; break;
    case TraceOp::kAtomic: ++c.inst_executed_atomics; break;
    case TraceOp::kVolatileLoad:
      ++c.inst_executed_global_loads;
      ++c.volatile_accesses;
      break;
    default:  // TraceOp::kVolatileStore
      ++c.inst_executed_global_stores;
      ++c.volatile_accesses;
      break;
  }
  c.active_lane_ops += lanes;
  c.issued_lane_ops += 32;
  ++sim_.launch_ops_;
  // Scheduling weight stays cache-independent in both modes (placement must
  // not depend on how the cost side is computed).
  sim_.task_records_[task_].weight += kMemIssueWeight;
  if (sim_.fused_launch_) {
    sim_.fused_charge(kind, lanes, task_);
  } else {
    sim_.trace_.append_op(kind, lanes);
  }
}

std::uint64_t WarpCtx::checked_index_slow(const std::string& buffer_name,
                                          std::uint64_t index,
                                          std::uint64_t size) {
  return sim_.sanitizer_->checked_index(buffer_name, index, size, task_);
}

bool WarpCtx::active_task_valid() const {
  return sim_.active_task_ == task_ && task_ < sim_.task_records_.size();
}

void WarpCtx::child_launch() {
  ++sim_.counters_.child_launches;
  ++sim_.launch_child_launches_;
  const auto cycles = static_cast<std::uint64_t>(
      sim_.spec_.child_launch_us * 1e3 * sim_.spec_.clock_ghz);
  TaskRecord& rec = sim_.task_records_[task_];
  rec.cycles += cycles;
  rec.weight += cycles;
}

// --- GpuSim ------------------------------------------------------------------

GpuSim::GpuSim(DeviceSpec spec) : spec_(std::move(spec)), memory_(spec_) {
  worker_threads_ = g_default_worker_threads;
  replay_mode_ = g_default_replay_mode;
  trace_.set_layout(g_default_trace_layout);
  spl_shift_ = memory_.spl_shift();
  const auto sms = static_cast<std::size_t>(spec_.num_sms);
  sm_load_.resize(sms);
  sm_tasks_.resize(sms);
  l2_requests_.resize(sms);
  shard_counters_.resize(sms);
  sm_cycles_.resize(sms);
  sm_longest_task_.resize(sms);
}

int GpuSim::worker_threads() const {
#ifdef RDBS_PARALLEL
  if (worker_threads_ > 0) return worker_threads_;
  return omp_get_max_threads();
#else
  return 1;
#endif
}

void GpuSim::set_default_worker_threads(int threads) {
  g_default_worker_threads = threads;
}

int GpuSim::default_worker_threads() { return g_default_worker_threads; }

void GpuSim::set_default_replay_mode(ReplayMode mode) {
  g_default_replay_mode = mode;
}

ReplayMode GpuSim::default_replay_mode() { return g_default_replay_mode; }

void GpuSim::set_default_trace_layout(TraceLayout layout) {
  g_default_trace_layout = layout;
}

TraceLayout GpuSim::default_trace_layout() { return g_default_trace_layout; }

bool GpuSim::parallel_compiled() {
#ifdef RDBS_PARALLEL
  return true;
#else
  return false;
#endif
}

void GpuSim::enable_sanitizer(SanitizeMode mode) {
  if (mode == SanitizeMode::kOff) {
    sanitizer_.reset();
    return;
  }
  if (!sanitizer_) sanitizer_ = std::make_unique<Sanitizer>(memory_);
}

void GpuSim::enable_fault_injection(const FaultConfig& config) {
  if (!config.enabled) {
    fault_.reset();
    return;
  }
  fault_ = std::make_unique<FaultInjector>(config);
}

// --- stream timelines --------------------------------------------------------

GpuSim::StreamState& GpuSim::stream_state(StreamId stream) {
  RDBS_DCHECK(stream >= 0);
  const auto index = static_cast<std::size_t>(stream);
  if (index >= streams_.size()) streams_.resize(index + 1);
  return streams_[index];
}

const GpuSim::StreamState* GpuSim::stream_state_if(StreamId stream) const {
  const auto index = static_cast<std::size_t>(stream);
  if (stream < 0 || index >= streams_.size()) return nullptr;
  return &streams_[index];
}

double GpuSim::admit_kernel(StreamId stream, double duration_ms) {
  StreamState& state = stream_state(stream);
  const double arrival = state.time_ms;
  // Retire every in-flight kernel that has ended by the arrival time; the
  // survivors genuinely overlap this kernel's admission window.
  std::size_t live = 0;
  for (std::size_t i = 0; i < inflight_end_ms_.size(); ++i) {
    if (inflight_end_ms_[i] > arrival) inflight_end_ms_[live++] = inflight_end_ms_[i];
  }
  inflight_end_ms_.resize(live);

  double start = arrival;
  const auto cap = static_cast<std::size_t>(
      std::max(1, spec_.max_concurrent_kernels));
  if (inflight_end_ms_.size() >= cap) {
    // All slots held: FCFS onto the slot that frees first.
    std::size_t earliest = 0;
    for (std::size_t i = 1; i < inflight_end_ms_.size(); ++i) {
      if (inflight_end_ms_[i] < inflight_end_ms_[earliest]) earliest = i;
    }
    start = inflight_end_ms_[earliest];
    inflight_end_ms_.erase(inflight_end_ms_.begin() +
                           static_cast<std::ptrdiff_t>(earliest));
  }
  state.queue_wait_ms += start - arrival;
  state.time_ms = start + duration_ms;
  state.kernels += 1;
  // Launch completion vs. the serving deadline: a cooperatively cancelled
  // query keeps charging kernels until its next cancellation point; each of
  // them lands here so the overrun is observable (query_server metrics).
  if (state.deadline_ms >= 0 && state.time_ms > state.deadline_ms) {
    ++state.overrun_kernels;
  }
  inflight_end_ms_.push_back(state.time_ms);
  return start;
}

double GpuSim::elapsed_ms() const {
  double latest = 0;
  for (const StreamState& state : streams_) {
    latest = std::max(latest, state.time_ms);
  }
  return std::max(latest, device_work_ms_);
}

double GpuSim::stream_elapsed_ms(StreamId stream) const {
  const StreamState* state = stream_state_if(stream);
  return state ? state->time_ms : 0.0;
}

double GpuSim::stream_queue_wait_ms(StreamId stream) const {
  const StreamState* state = stream_state_if(stream);
  return state ? state->queue_wait_ms : 0.0;
}

std::uint64_t GpuSim::stream_kernels(StreamId stream) const {
  const StreamState* state = stream_state_if(stream);
  return state ? state->kernels : 0;
}

void GpuSim::reset_time() {
  streams_.clear();
  inflight_end_ms_.clear();
  device_work_ms_ = 0;
}

void GpuSim::reset_all() {
  reset_time();
  counters_ = Counters{};
  memory_.reset_caches();
  trace_.clear();
  task_records_.clear();
  l2_stream_.clear();
  active_task_ = kNoTask;
  launch_ops_ = 0;
  launch_open_ = false;
}

void GpuSim::begin_launch(bool host_launch, StreamId stream) {
  RDBS_DCHECK(!launch_open_);
  launch_open_ = true;
  launch_stream_ = stream;
  trace_.clear();
  task_records_.clear();
  l2_stream_.clear();
  active_task_ = kNoTask;
  launch_ops_ = 0;
  // Fused (inline-charge) execution whenever no post-launch consumer needs
  // a materialized trace: only the sanitizer scans it. gfi keys off op
  // ordinals (launch_ops_), which fused launches count identically.
  fused_launch_ =
      replay_mode_ != ReplayMode::kTwoPass && sanitizer_ == nullptr;
  std::fill(sm_load_.begin(), sm_load_.end(), 0);
  // All-zero loads in SM order form a valid min-heap on (weight, sm).
  load_heap_.clear();
  for (int sm = 0; sm < spec_.num_sms; ++sm) {
    load_heap_.emplace_back(0, sm);
  }
  launch_dram_bytes_ = 0;
  launch_child_launches_ = 0;
  if (host_launch) ++counters_.kernel_launches;
  ++launch_ordinal_;
  if (sanitizer_) {
    sanitizer_->begin_launch(pending_label_, launch_ordinal_, stream);
    pending_label_.clear();
  }
  if (fault_) {
    // Per-stream launch ordinal: the counter key for every fault this
    // launch can take. Drawn here, in the serial record phase, so the plan
    // is independent of replay parallelism.
    const auto sidx = static_cast<std::size_t>(stream);
    if (stream_launch_ordinals_.size() <= sidx) {
      stream_launch_ordinals_.resize(sidx + 1, 0);
    }
    current_stream_launch_ = ++stream_launch_ordinals_[sidx];
    pending_launch_fault_.reset();
    if (!device_lost_ && fault_log_.size() < fault_->config().max_faults) {
      pending_launch_fault_ =
          fault_->launch_fault(stream, current_stream_launch_);
    }
  }
}

int GpuSim::pick_sm(Schedule schedule, std::uint64_t task_index,
                    int warps_per_block) {
  if (schedule == Schedule::kStatic) {
    const std::uint64_t block = task_index / static_cast<std::uint64_t>(
                                                 std::max(1, warps_per_block));
    return static_cast<int>(block % static_cast<std::uint64_t>(spec_.num_sms));
  }
  // Dynamic: least-loaded SM (persistent workers stealing from a shared
  // queue converge to exactly this assignment). The heap is lazy — commits
  // push fresh (weight, sm) entries without removing stale ones — so the
  // top is discarded until it matches the SM's current weight. Ties break
  // toward the lowest SM index, matching a linear argmin scan.
  while (true) {
    const auto& top = load_heap_.front();
    if (sm_load_[static_cast<std::size_t>(top.second)] == top.first) {
      return top.second;
    }
    std::pop_heap(load_heap_.begin(), load_heap_.end(), std::greater<>{});
    load_heap_.pop_back();
  }
}

WarpCtx GpuSim::begin_task(int sm) {
  RDBS_DCHECK(launch_open_);
  RDBS_DCHECK(active_task_ == kNoTask);
  const auto index = static_cast<std::uint32_t>(task_records_.size());
  TaskRecord rec;
  rec.op_begin = launch_ops_;
  rec.addr_begin = trace_.addr_stream_offset();
  rec.sm = sm;
  task_records_.push_back(rec);
  active_task_ = index;
  // Task boundary: reset the compressed delta chain so this task's ops
  // decode independently of its predecessors (parallel replay shards).
  if (!fused_launch_) trace_.begin_task();
  return WarpCtx(*this, sm, index, sanitizer_ != nullptr, fault_ != nullptr);
}

void GpuSim::commit_task(const WarpCtx& ctx) {
  RDBS_DCHECK(active_task_ == ctx.task_);
  TaskRecord& rec = task_records_[ctx.task_];
  rec.op_end = launch_ops_;
  const auto sm = static_cast<std::size_t>(rec.sm);
  sm_load_[sm] += rec.weight;
  load_heap_.emplace_back(sm_load_[sm], rec.sm);
  std::push_heap(load_heap_.begin(), load_heap_.end(), std::greater<>{});
  active_task_ = kNoTask;
}

void GpuSim::replay_shard_seed(int sm) {
  // The pre-overhaul pipeline, verbatim: insertion-sort every op's lanes,
  // derive distinct addresses and sectors in one scan, probe the L1 one
  // sector at a time through the scalar access() entry point, and forward
  // misses (and all atomic/volatile sectors) as per-sector byte-address
  // requests with bit 0 marking the cached path.
  SectoredCache& l1 = memory_.l1(sm);
  std::vector<std::uint64_t>& requests =
      l2_requests_[static_cast<std::size_t>(sm)];
  requests.clear();
  ShardCounters sc;
  std::array<std::uint64_t, 32> sector_addrs{};
  const auto conflict_cycles =
      static_cast<std::uint64_t>(spec_.atomic_conflict_cycles);

  for (const std::uint32_t t : sm_tasks_[static_cast<std::size_t>(sm)]) {
    TaskRecord& rec = task_records_[t];
    rec.l2_begin = static_cast<std::uint32_t>(requests.size());
    std::uint64_t cycles = 0;
    LaunchTrace::OpCursor cursor = trace_.task_cursor(rec);
    LaunchTrace::OpView op;
    while (cursor.next(op)) {
      std::uint64_t* lane_addrs = cursor.lanes_mutable();
      const std::uint32_t lanes = op.lanes;
      seed_sort_addresses(lane_addrs, lanes);

      // One pass over the sorted lanes yields both the distinct-address
      // count (atomic conflicts) and the coalesced distinct-sector list.
      std::uint32_t distinct_addrs = 0;
      std::uint32_t sectors = 0;
      std::uint64_t prev_addr = ~0ull;
      std::uint64_t prev_sector = ~0ull;
      for (std::uint32_t l = 0; l < lanes; ++l) {
        const std::uint64_t addr = lane_addrs[l];
        if (addr != prev_addr) {
          ++distinct_addrs;
          prev_addr = addr;
          const std::uint64_t sector =
              addr &
              ~static_cast<std::uint64_t>(SectoredCache::kSectorBytes - 1);
          if (sector != prev_sector) {
            sector_addrs[sectors++] = sector;
            prev_sector = sector;
          }
        }
      }

      sc.memory_transactions += sectors;
      cycles += sectors;
      if (op.kind == TraceOp::kAtomic || op.is_volatile()) {
        if (op.kind == TraceOp::kAtomic) {
          const std::uint64_t conflicts = lanes - distinct_addrs;
          sc.atomic_conflicts += conflicts;
          cycles += conflicts * conflict_cycles;
        }
        for (std::uint32_t s = 0; s < sectors; ++s) {
          requests.push_back(sector_addrs[s]);
        }
      } else {
        sc.l1_sector_accesses += sectors;
        for (std::uint32_t s = 0; s < sectors; ++s) {
          if (l1.access(sector_addrs[s])) {
            ++sc.l1_sector_hits;
          } else {
            requests.push_back(sector_addrs[s] | 1ull);
          }
        }
      }
    }
    rec.cycles += cycles;
    rec.l2_count = static_cast<std::uint32_t>(requests.size()) - rec.l2_begin;
  }
  shard_counters_[static_cast<std::size_t>(sm)] = sc;
}

void GpuSim::replay_shard(int sm) {
  if (trace_.layout() == TraceLayout::kLegacy) {
    replay_shard_seed(sm);
    return;
  }
  SectoredCache& l1 = memory_.l1(sm);
  std::vector<std::uint64_t>& requests =
      l2_requests_[static_cast<std::size_t>(sm)];
  requests.clear();
  ShardCounters sc;
  std::array<WarpLineRef, 32> lines{};
  const auto conflict_cycles =
      static_cast<std::uint64_t>(spec_.atomic_conflict_cycles);
  const std::uint32_t pack_shift = (1u << spl_shift_) + 1;

  for (const std::uint32_t t : sm_tasks_[static_cast<std::size_t>(sm)]) {
    TaskRecord& rec = task_records_[t];
    rec.l2_begin = static_cast<std::uint32_t>(requests.size());
    std::uint64_t cycles = 0;
    LaunchTrace::OpCursor cursor = trace_.task_cursor(rec);
    LaunchTrace::OpView op;
    while (cursor.next(op)) {
      // Coalesce lanes into ascending (line, sector-mask) pairs; the
      // record-time sorted flag skips the sort for the common small-stride
      // warp pattern.
      const CoalesceResult co = coalesce_warp_lanes(
          cursor.lanes_mutable(), op.lanes, op.sorted, spl_shift_,
          lines.data());
      sc.memory_transactions += co.sectors;
      cycles += co.sectors;
      if (op.kind == TraceOp::kAtomic || TraceOp::kind_is_volatile(op.kind)) {
        // Atomics and volatile accesses resolve at L2: they bypass L1 but
        // benefit from L2 residency; only L2 misses travel to DRAM.
        // Same-address lanes serialize for atomics only: lanes minus
        // distinct addresses collide (volatile accesses carry no RMW
        // serialization).
        if (op.kind == TraceOp::kAtomic) {
          const std::uint64_t conflicts = op.lanes - co.distinct_addrs;
          sc.atomic_conflicts += conflicts;
          cycles += conflicts * conflict_cycles;
        }
        for (std::uint32_t i = 0; i < co.lines; ++i) {
          requests.push_back((lines[i].line << pack_shift) |
                             (static_cast<std::uint64_t>(lines[i].mask) << 1));
        }
      } else {
        // Loads and stores probe this SM's L1 (one batched tag scan per
        // line); stores write through L1 into the write-back L2, so only
        // sectors the L1 could not serve are forwarded as L2 requests
        // (bit 0 marks the cached path).
        sc.l1_sector_accesses += co.sectors;
        for (std::uint32_t i = 0; i < co.lines; ++i) {
          const std::uint32_t hits = l1.access_line(lines[i].line,
                                                    lines[i].mask);
          sc.l1_sector_hits += static_cast<std::uint32_t>(std::popcount(hits));
          const std::uint32_t missed = lines[i].mask & ~hits;
          if (missed != 0) {
            requests.push_back((lines[i].line << pack_shift) |
                               (static_cast<std::uint64_t>(missed) << 1) |
                               1ull);
          }
        }
      }
    }
    rec.cycles += cycles;
    rec.l2_count = static_cast<std::uint32_t>(requests.size()) - rec.l2_begin;
  }
  shard_counters_[static_cast<std::size_t>(sm)] = sc;
}

std::uint64_t GpuSim::charge_l2(std::uint64_t line, std::uint32_t mask,
                                bool cached) {
  Counters& c = counters_;
  const auto probed = static_cast<std::uint64_t>(std::popcount(mask));
  c.l2_sector_accesses += probed;
  const std::uint32_t hits = memory_.l2_cache().access_line(line, mask);
  const auto hit_count = static_cast<std::uint64_t>(std::popcount(hits));
  c.l2_sector_hits += hit_count;
  const std::uint64_t miss_count = probed - hit_count;
  const std::uint64_t bytes = miss_count * SectoredCache::kSectorBytes;
  c.dram_bytes += bytes;
  launch_dram_bytes_ += bytes;
  std::uint64_t cycles = miss_count * kDramReplayCycles;
  if (cached) cycles += hit_count * kL2ReplayCycles;
  return cycles;
}

void GpuSim::flush_l2_stream() {
  // The stream is already in canonical task order (fused record is serial;
  // the two-pass gather walks tasks in order). Small streams are charged
  // directly; large ones are stable counting-sorted by L2 set first
  // (multisplit-style radix binning): LRU decisions only ever compare lines
  // within one set, and the stable sort preserves canonical order within
  // each set, so hits, misses, evictions and the cross-launch cache state
  // are bit-identical to the direct in-order pass — while each set's tag
  // array is touched exactly once, in ascending set order.
  const std::uint32_t pack_shift = (1u << spl_shift_) + 1;
  const std::uint32_t sector_mask = (1u << (1u << spl_shift_)) - 1;
  if (l2_stream_.size() < kBinnedMinL2Requests) {
    for (const L2StreamEntry& e : l2_stream_) {
      task_records_[e.task].cycles += charge_l2(
          e.packed >> pack_shift,
          static_cast<std::uint32_t>(e.packed >> 1) & sector_mask,
          (e.packed & 1ull) != 0);
    }
  } else {
    const SectoredCache& l2 = memory_.l2_cache();
    const std::size_t sets = l2.num_sets();
    l2_bin_starts_.assign(sets + 1, 0);
    for (const L2StreamEntry& e : l2_stream_) {
      ++l2_bin_starts_[l2.set_of_line(e.packed >> pack_shift) + 1];
    }
    for (std::size_t s = 0; s < sets; ++s) {
      l2_bin_starts_[s + 1] += l2_bin_starts_[s];
    }
    l2_binned_.resize(l2_stream_.size());
    for (const L2StreamEntry& e : l2_stream_) {
      const std::size_t set = l2.set_of_line(e.packed >> pack_shift);
      l2_binned_[l2_bin_starts_[set]++] = e;
    }
    for (const L2StreamEntry& e : l2_binned_) {
      task_records_[e.task].cycles += charge_l2(
          e.packed >> pack_shift,
          static_cast<std::uint32_t>(e.packed >> 1) & sector_mask,
          (e.packed & 1ull) != 0);
    }
  }
  l2_stream_.clear();
}

void GpuSim::fused_charge(std::uint8_t kind, std::uint32_t lanes,
                          std::uint32_t task) {
  TaskRecord& rec = task_records_[task];
  // Deliberately uninitialized: coalesce_warp_lanes writes the first
  // `co.lines` entries and only those are read. Zero-filling 512 bytes per
  // memory instruction showed up in profiles.
  std::array<WarpLineRef, 32> lines;
  const CoalesceResult co = coalesce_warp_lanes(
      fused_lanes_.data(), lanes, /*presorted=*/false, spl_shift_,
      lines.data());
  Counters& c = counters_;
  c.memory_transactions += co.sectors;
  std::uint64_t cycles = co.sectors;
  // L2 requests are charged inline: the serial record phase probes the L2
  // in canonical task order by construction, so this is the same request
  // stream pass 2 of a two-pass replay would issue. (A deferred variant
  // that queued requests and settled them in one batch at end_launch
  // measured ~30% slower end to end — the L2 tag table fits the host LLC,
  // so batching buys no locality and the queue traffic is pure overhead.)
  if (kind == TraceOp::kAtomic || TraceOp::kind_is_volatile(kind)) {
    if (kind == TraceOp::kAtomic) {
      const std::uint64_t conflicts = lanes - co.distinct_addrs;
      c.atomic_conflicts += conflicts;
      cycles += conflicts *
                static_cast<std::uint64_t>(spec_.atomic_conflict_cycles);
    }
    for (std::uint32_t i = 0; i < co.lines; ++i) {
      cycles += charge_l2(lines[i].line, lines[i].mask, /*cached=*/false);
    }
  } else {
    c.l1_sector_accesses += co.sectors;
    SectoredCache& l1 = memory_.l1(rec.sm);
    for (std::uint32_t i = 0; i < co.lines; ++i) {
      const std::uint32_t hits = l1.access_line(lines[i].line, lines[i].mask);
      c.l1_sector_hits += static_cast<std::uint64_t>(std::popcount(hits));
      const std::uint32_t missed = lines[i].mask & ~hits;
      if (missed != 0) {
        cycles += charge_l2(lines[i].line, missed, /*cached=*/true);
      }
    }
  }
  rec.cycles += cycles;
}

void GpuSim::replay_launch() {
  // Bucket tasks by SM, preserving canonical task order within each shard.
  for (const int sm : used_sms_) sm_tasks_[static_cast<std::size_t>(sm)].clear();
  used_sms_.clear();
  for (std::uint32_t t = 0; t < task_records_.size(); ++t) {
    const auto sm = static_cast<std::size_t>(task_records_[t].sm);
    if (sm_tasks_[sm].empty()) used_sms_.push_back(task_records_[t].sm);
    sm_tasks_[sm].push_back(t);
  }

  // Pass 1 — per-SM L1 shards. Shards share no mutable state (each has its
  // own L1, counter partials, task-cycle slots and L2 request list), so the
  // pass parallelizes freely; any iteration order yields identical results.
  // Launches below kParallelMinOps memory ops run serially: the fork/join
  // barrier dominates tiny launches.
  const auto shard_count = static_cast<std::int64_t>(used_sms_.size());
#ifdef RDBS_PARALLEL
  const int threads = worker_threads();
  if (threads > 1 && shard_count > 1 && launch_ops_ >= kParallelMinOps) {
#ifdef RDBS_TSAN
    const int team =
        static_cast<int>(std::min<std::int64_t>(threads, shard_count));
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(team));
    for (int w = 0; w < team; ++w) {
      workers.emplace_back([this, w, team, shard_count] {
        for (std::int64_t i = w; i < shard_count; i += team) {
          replay_shard(used_sms_[static_cast<std::size_t>(i)]);
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
#else
    // Coarsened dynamic chunks: a few batches of shards per worker rather
    // than one scheduler round-trip per shard.
    const int chunk = static_cast<int>(std::max<std::int64_t>(
        1, shard_count / (static_cast<std::int64_t>(threads) * 4)));
#pragma omp parallel for schedule(dynamic, chunk) num_threads(threads)
    for (std::int64_t i = 0; i < shard_count; ++i) {
      replay_shard(used_sms_[static_cast<std::size_t>(i)]);
    }
#endif
  } else {
    for (std::int64_t i = 0; i < shard_count; ++i) {
      replay_shard(used_sms_[static_cast<std::size_t>(i)]);
    }
  }
#else
  for (std::int64_t i = 0; i < shard_count; ++i) {
    replay_shard(used_sms_[static_cast<std::size_t>(i)]);
  }
#endif

  // Pass 2 — the shared L2, replayed in canonical task order (the exact
  // request stream a fused serial simulation would produce). Large streams
  // are counting-sorted by L2 set first (multisplit-style radix binning):
  // LRU decisions only ever compare lines within one set, and the stable
  // sort preserves canonical order within each set, so hits, misses,
  // evictions and the cross-launch cache state are bit-identical to the
  // direct in-order pass — while each set's tag array is touched exactly
  // once, in ascending set order.
  if (trace_.layout() == TraceLayout::kLegacy) {
    // Seed-faithful pass 2: walk tasks in canonical order, probing the L2
    // one sector byte-address at a time (requests were pushed per sector by
    // replay_shard_seed). No binning — this is the baseline pipeline.
    Counters& sc = counters_;
    for (TaskRecord& rec : task_records_) {
      if (rec.l2_count == 0) continue;
      const std::vector<std::uint64_t>& requests =
          l2_requests_[static_cast<std::size_t>(rec.sm)];
      const std::uint32_t end = rec.l2_begin + rec.l2_count;
      std::uint64_t cycles = 0;
      for (std::uint32_t i = rec.l2_begin; i < end; ++i) {
        const std::uint64_t request = requests[i];
        const bool cached = (request & 1ull) != 0;
        const std::uint64_t sector = request & ~1ull;
        ++sc.l2_sector_accesses;
        if (memory_.l2_cache().access(sector)) {
          ++sc.l2_sector_hits;
          if (cached) cycles += kL2ReplayCycles;
        } else {
          sc.dram_bytes += SectoredCache::kSectorBytes;
          launch_dram_bytes_ += SectoredCache::kSectorBytes;
          cycles += kDramReplayCycles;
        }
      }
      rec.cycles += cycles;
    }
    // Deterministic counter reduction: shard partials summed in SM order.
    for (const int sm : used_sms_) {
      const ShardCounters& scp = shard_counters_[static_cast<std::size_t>(sm)];
      sc.l1_sector_accesses += scp.l1_sector_accesses;
      sc.l1_sector_hits += scp.l1_sector_hits;
      sc.memory_transactions += scp.memory_transactions;
      sc.atomic_conflicts += scp.atomic_conflicts;
    }
    return;
  }

  std::size_t total_requests = 0;
  for (const int sm : used_sms_) {
    total_requests += l2_requests_[static_cast<std::size_t>(sm)].size();
  }
  if (total_requests != 0) {
    // Gather the canonical-order stream tagged with its owning task, then
    // charge it through the shared (binned) pass.
    l2_stream_.clear();
    l2_stream_.reserve(total_requests);
    for (std::uint32_t t = 0;
         t < static_cast<std::uint32_t>(task_records_.size()); ++t) {
      const TaskRecord& rec = task_records_[t];
      if (rec.l2_count == 0) continue;
      const std::vector<std::uint64_t>& requests =
          l2_requests_[static_cast<std::size_t>(rec.sm)];
      const std::uint32_t end = rec.l2_begin + rec.l2_count;
      for (std::uint32_t i = rec.l2_begin; i < end; ++i) {
        l2_stream_.push_back({requests[i], t});
      }
    }
    flush_l2_stream();
  }

  // Deterministic counter reduction: shard partials summed in SM order.
  Counters& c = counters_;
  for (const int sm : used_sms_) {
    const ShardCounters& sc = shard_counters_[static_cast<std::size_t>(sm)];
    c.l1_sector_accesses += sc.l1_sector_accesses;
    c.l1_sector_hits += sc.l1_sector_hits;
    c.memory_transactions += sc.memory_transactions;
    c.atomic_conflicts += sc.atomic_conflicts;
  }
}

void GpuSim::apply_launch_fault(LaunchResult& result) {
  const FaultConfig& cfg = fault_->config();
  std::optional<FaultClass> cls = pending_launch_fault_;
  pending_launch_fault_.reset();
  // Load faults inside this launch may have exhausted the budget after the
  // launch fault was drawn at begin_launch; the budget is a hard cap on
  // injections, so drop it. (Genuine watchdog timeouts below still record —
  // they are observed behavior, not injections.)
  if (cls && fault_log_.size() >= cfg.max_faults) cls.reset();
  FaultClass fired;
  if (cls) {
    fired = *cls;
  } else if (!device_lost_ && cfg.watchdog_ms > 0 &&
             result.ms > cfg.watchdog_ms) {
    // Cost-clock watchdog: a kernel whose modeled time exceeds the deadline
    // is killed and reported even when no fault was injected — a genuine
    // runaway (e.g. a corrupted frontier exploding a launch) surfaces as a
    // typed kTimeout instead of silently inflating the timeline.
    fired = FaultClass::kTimeout;
  } else {
    return;
  }
  GpuFault fault;
  fault.cls = fired;
  fault.stream = launch_stream_;
  fault.launch = current_stream_launch_;
  switch (fired) {
    case FaultClass::kLaunchFailure:
      // The kernel never started: only the host launch overhead lands on
      // the stream. Record-phase effects stand — the attempt is poisoned
      // and discarded by the engine layer, matching CUDA's asynchronous
      // error model.
      result.ms = spec_.kernel_launch_us * 1e-3;
      break;
    case FaultClass::kTimeout:
      // The kernel hung; the watchdog killed it after watchdog_ms.
      result.ms = std::max(result.ms,
                           cfg.watchdog_ms > 0 ? cfg.watchdog_ms : 25.0);
      break;
    case FaultClass::kStreamStall:
      // Latency-only fault: the stream is held for stall_ms but the
      // launch's work is intact (non-poisoning; batch dispatch naturally
      // routes later queries around the delayed stream). The sanitizer
      // opens a fresh epoch so post-stall work is distinguishable.
      result.ms += cfg.stall_ms;
      if (sanitizer_) sanitizer_->stream_stall(launch_stream_);
      break;
    case FaultClass::kDeviceLoss:
      device_lost_ = true;
      break;
    default:
      break;
  }
  ++counters_.faults_injected;
  fault_log_.push_back(std::move(fault));
}

LaunchResult GpuSim::end_launch(std::uint64_t tasks, bool host_launch) {
  RDBS_DCHECK(launch_open_);
  RDBS_DCHECK(active_task_ == kNoTask);
  RDBS_DCHECK(tasks == task_records_.size());
  if (fused_launch_) {
    // Every memory op already charged the caches inline; there is no trace
    // to replay or scan.
    ++stats_.fused_launches;
  } else {
    replay_launch();
    if (sanitizer_) {
      sanitizer_->scan_launch(trace_, task_records_);
    }
    stats_.peak_trace_bytes =
        std::max(stats_.peak_trace_bytes, trace_.bytes_in_use());
    stats_.peak_legacy_bytes =
        std::max(stats_.peak_legacy_bytes, trace_.legacy_equivalent_bytes());
  }
  ++stats_.launches;
  launch_open_ = false;

  std::fill(sm_cycles_.begin(), sm_cycles_.end(), 0.0);
  std::fill(sm_longest_task_.begin(), sm_longest_task_.end(), 0);
  for (const TaskRecord& rec : task_records_) {
    const auto sm = static_cast<std::size_t>(rec.sm);
    sm_cycles_[sm] += static_cast<double>(rec.cycles);
    sm_longest_task_[sm] = std::max(sm_longest_task_[sm], rec.cycles);
  }

  LaunchResult result;
  result.tasks = tasks;
  double worst_sm_cycles = 0;
  for (int sm = 0; sm < spec_.num_sms; ++sm) {
    const auto i = static_cast<std::size_t>(sm);
    result.busy_cycles += sm_cycles_[i];
    // An SM retires its resident warps at `warp_schedulers` instructions
    // per cycle once enough warps are in flight; a single long warp is the
    // lower bound (no parallelism inside one warp).
    const double sm_time =
        std::max(sm_cycles_[i] / spec_.warp_schedulers,
                 static_cast<double>(sm_longest_task_[i]));
    worst_sm_cycles = std::max(worst_sm_cycles, sm_time);
  }
  const double compute_ms = spec_.cycles_to_ms(worst_sm_cycles);
  const double dram_ms =
      spec_.bytes_to_ms(static_cast<double>(launch_dram_bytes_));
  result.ms = std::max(compute_ms, dram_ms);
  if (host_launch) result.ms += spec_.kernel_launch_us * 1e-3;
  if (fault_) apply_launch_fault(result);
  admit_kernel(launch_stream_, result.ms);
  // Aggregate-throughput floor on cross-stream overlap: the device cannot
  // retire total work faster than all SMs issuing flat out, nor move DRAM
  // traffic beyond peak bandwidth. Each launch's own ms already dominates
  // its contribution here, so a single stream never hits the floor.
  device_work_ms_ += std::max(
      spec_.cycles_to_ms(result.busy_cycles /
                         (static_cast<double>(spec_.num_sms) *
                          spec_.warp_schedulers)),
      dram_ms);
  return result;
}

}  // namespace rdbs::gpusim
