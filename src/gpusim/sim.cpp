#include "gpusim/sim.hpp"

#ifdef RDBS_PARALLEL
#include <omp.h>
#endif

// ThreadSanitizer cannot see the synchronization inside GCC's libgomp (team
// start and the implicit end-of-region barrier use futexes TSan does not
// intercept), which yields false positives on every parallel region. Under
// TSan the shard fan-out therefore runs on std::thread — create/join are
// fully intercepted — so the sanitizer checks the real invariant (shards
// share no mutable state) without runtime noise.
#if defined(__SANITIZE_THREAD__)
#define RDBS_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define RDBS_TSAN 1
#endif
#endif
#if defined(RDBS_PARALLEL) && defined(RDBS_TSAN)
#include <thread>
#endif

namespace rdbs::gpusim {

namespace {
// Issue-visible cycles added per sector that misses a cache level: the
// latency itself is assumed hidden by other resident warps; these model the
// extra pipeline occupancy of replays, while DRAM *throughput* is enforced
// separately by the per-kernel bandwidth floor.
constexpr std::uint64_t kL2ReplayCycles = 2;    // L1 miss served by L2
constexpr std::uint64_t kDramReplayCycles = 6;  // L2 miss, full DRAM trip

// Scheduling weight of one warp memory instruction. The dynamic (least-
// loaded SM) placement decision is made during the record phase, before the
// cache replay has run, so it keys on a cache-independent load estimate:
// ALU and child-launch cycles exactly, plus this flat per-memory-
// instruction charge (a typical partially-coalesced access: a few sector
// transactions plus some replay cycles). Placement therefore tracks task
// *size* (edge counts, instruction counts) — the quantity the paper's load-
// balancing experiments vary — while staying invariant under replay
// parallelism.
constexpr std::uint64_t kMemIssueWeight = 8;

int g_default_worker_threads = 0;

// Insertion sort of the first `n` lane addresses: n <= 32 and warp access
// patterns are mostly presorted (consecutive lanes touch consecutive
// elements), so this beats the previous O(n^2) first-seen duplicate scans.
inline void sort_addresses(std::array<std::uint64_t, 32>& a, std::uint32_t n) {
  for (std::uint32_t i = 1; i < n; ++i) {
    const std::uint64_t key = a[i];
    std::uint32_t j = i;
    for (; j > 0 && a[j - 1] > key; --j) a[j] = a[j - 1];
    a[j] = key;
  }
}
}  // namespace

// --- WarpCtx (record phase) --------------------------------------------------

void WarpCtx::alu(std::uint32_t instructions, std::uint32_t active_lanes) {
  RDBS_DCHECK(active_lanes <= 32);
  TaskRecord& rec = sim_.task_records_[task_];
  rec.cycles += instructions;
  rec.weight += instructions;
  sim_.counters_.alu_instructions += instructions;
  sim_.counters_.active_lane_ops +=
      static_cast<std::uint64_t>(instructions) * active_lanes;
  sim_.counters_.issued_lane_ops += static_cast<std::uint64_t>(instructions) * 32;
}

std::uint64_t* WarpCtx::trace_slots(std::size_t lanes) {
  std::vector<std::uint64_t>& pool = sim_.trace_addrs_;
  pool.resize(pool.size() + lanes);
  return pool.data() + (pool.size() - lanes);
}

void WarpCtx::record_mem(std::uint8_t kind, std::uint32_t lanes) {
  RDBS_DCHECK(active_task_valid());
  Counters& c = sim_.counters_;
  switch (kind) {
    case TraceOp::kLoad: ++c.inst_executed_global_loads; break;
    case TraceOp::kStore: ++c.inst_executed_global_stores; break;
    case TraceOp::kAtomic: ++c.inst_executed_atomics; break;
    case TraceOp::kVolatileLoad:
      ++c.inst_executed_global_loads;
      ++c.volatile_accesses;
      break;
    default:  // TraceOp::kVolatileStore
      ++c.inst_executed_global_stores;
      ++c.volatile_accesses;
      break;
  }
  c.active_lane_ops += lanes;
  c.issued_lane_ops += 32;
  const auto addr_begin =
      static_cast<std::uint32_t>(sim_.trace_addrs_.size() - lanes);
  sim_.trace_ops_.push_back(
      TraceOp{kind, static_cast<std::uint8_t>(lanes), addr_begin});
  sim_.task_records_[task_].weight += kMemIssueWeight;
}

std::uint64_t WarpCtx::checked_index_slow(const std::string& buffer_name,
                                          std::uint64_t index,
                                          std::uint64_t size) {
  return sim_.sanitizer_->checked_index(buffer_name, index, size, task_);
}

bool WarpCtx::active_task_valid() const {
  return sim_.active_task_ == task_ && task_ < sim_.task_records_.size();
}

void WarpCtx::child_launch() {
  ++sim_.counters_.child_launches;
  ++sim_.launch_child_launches_;
  const auto cycles = static_cast<std::uint64_t>(
      sim_.spec_.child_launch_us * 1e3 * sim_.spec_.clock_ghz);
  TaskRecord& rec = sim_.task_records_[task_];
  rec.cycles += cycles;
  rec.weight += cycles;
}

// --- GpuSim ------------------------------------------------------------------

GpuSim::GpuSim(DeviceSpec spec) : spec_(std::move(spec)), memory_(spec_) {
  worker_threads_ = g_default_worker_threads;
  const auto sms = static_cast<std::size_t>(spec_.num_sms);
  sm_load_.resize(sms);
  sm_tasks_.resize(sms);
  l2_requests_.resize(sms);
  shard_counters_.resize(sms);
  sm_cycles_.resize(sms);
  sm_longest_task_.resize(sms);
}

int GpuSim::worker_threads() const {
#ifdef RDBS_PARALLEL
  if (worker_threads_ > 0) return worker_threads_;
  return omp_get_max_threads();
#else
  return 1;
#endif
}

void GpuSim::set_default_worker_threads(int threads) {
  g_default_worker_threads = threads;
}

int GpuSim::default_worker_threads() { return g_default_worker_threads; }

bool GpuSim::parallel_compiled() {
#ifdef RDBS_PARALLEL
  return true;
#else
  return false;
#endif
}

void GpuSim::enable_sanitizer(SanitizeMode mode) {
  if (mode == SanitizeMode::kOff) {
    sanitizer_.reset();
    return;
  }
  if (!sanitizer_) sanitizer_ = std::make_unique<Sanitizer>(memory_);
}

void GpuSim::enable_fault_injection(const FaultConfig& config) {
  if (!config.enabled) {
    fault_.reset();
    return;
  }
  fault_ = std::make_unique<FaultInjector>(config);
}

// --- stream timelines --------------------------------------------------------

GpuSim::StreamState& GpuSim::stream_state(StreamId stream) {
  RDBS_DCHECK(stream >= 0);
  const auto index = static_cast<std::size_t>(stream);
  if (index >= streams_.size()) streams_.resize(index + 1);
  return streams_[index];
}

const GpuSim::StreamState* GpuSim::stream_state_if(StreamId stream) const {
  const auto index = static_cast<std::size_t>(stream);
  if (stream < 0 || index >= streams_.size()) return nullptr;
  return &streams_[index];
}

double GpuSim::admit_kernel(StreamId stream, double duration_ms) {
  StreamState& state = stream_state(stream);
  const double arrival = state.time_ms;
  // Retire every in-flight kernel that has ended by the arrival time; the
  // survivors genuinely overlap this kernel's admission window.
  std::size_t live = 0;
  for (std::size_t i = 0; i < inflight_end_ms_.size(); ++i) {
    if (inflight_end_ms_[i] > arrival) inflight_end_ms_[live++] = inflight_end_ms_[i];
  }
  inflight_end_ms_.resize(live);

  double start = arrival;
  const auto cap = static_cast<std::size_t>(
      std::max(1, spec_.max_concurrent_kernels));
  if (inflight_end_ms_.size() >= cap) {
    // All slots held: FCFS onto the slot that frees first.
    std::size_t earliest = 0;
    for (std::size_t i = 1; i < inflight_end_ms_.size(); ++i) {
      if (inflight_end_ms_[i] < inflight_end_ms_[earliest]) earliest = i;
    }
    start = inflight_end_ms_[earliest];
    inflight_end_ms_.erase(inflight_end_ms_.begin() +
                           static_cast<std::ptrdiff_t>(earliest));
  }
  state.queue_wait_ms += start - arrival;
  state.time_ms = start + duration_ms;
  state.kernels += 1;
  // Launch completion vs. the serving deadline: a cooperatively cancelled
  // query keeps charging kernels until its next cancellation point; each of
  // them lands here so the overrun is observable (query_server metrics).
  if (state.deadline_ms >= 0 && state.time_ms > state.deadline_ms) {
    ++state.overrun_kernels;
  }
  inflight_end_ms_.push_back(state.time_ms);
  return start;
}

double GpuSim::elapsed_ms() const {
  double latest = 0;
  for (const StreamState& state : streams_) {
    latest = std::max(latest, state.time_ms);
  }
  return std::max(latest, device_work_ms_);
}

double GpuSim::stream_elapsed_ms(StreamId stream) const {
  const StreamState* state = stream_state_if(stream);
  return state ? state->time_ms : 0.0;
}

double GpuSim::stream_queue_wait_ms(StreamId stream) const {
  const StreamState* state = stream_state_if(stream);
  return state ? state->queue_wait_ms : 0.0;
}

std::uint64_t GpuSim::stream_kernels(StreamId stream) const {
  const StreamState* state = stream_state_if(stream);
  return state ? state->kernels : 0;
}

void GpuSim::reset_time() {
  streams_.clear();
  inflight_end_ms_.clear();
  device_work_ms_ = 0;
}

void GpuSim::reset_all() {
  reset_time();
  counters_ = Counters{};
  memory_.reset_caches();
  trace_ops_.clear();
  trace_addrs_.clear();
  task_records_.clear();
  active_task_ = kNoTask;
  launch_open_ = false;
}

void GpuSim::begin_launch(bool host_launch, StreamId stream) {
  RDBS_DCHECK(!launch_open_);
  launch_open_ = true;
  launch_stream_ = stream;
  trace_ops_.clear();
  trace_addrs_.clear();
  task_records_.clear();
  active_task_ = kNoTask;
  std::fill(sm_load_.begin(), sm_load_.end(), 0);
  // All-zero loads in SM order form a valid min-heap on (weight, sm).
  load_heap_.clear();
  for (int sm = 0; sm < spec_.num_sms; ++sm) {
    load_heap_.emplace_back(0, sm);
  }
  launch_dram_bytes_ = 0;
  launch_child_launches_ = 0;
  if (host_launch) ++counters_.kernel_launches;
  ++launch_ordinal_;
  if (sanitizer_) {
    sanitizer_->begin_launch(pending_label_, launch_ordinal_);
    pending_label_.clear();
  }
  if (fault_) {
    // Per-stream launch ordinal: the counter key for every fault this
    // launch can take. Drawn here, in the serial record phase, so the plan
    // is independent of replay parallelism.
    const auto sidx = static_cast<std::size_t>(stream);
    if (stream_launch_ordinals_.size() <= sidx) {
      stream_launch_ordinals_.resize(sidx + 1, 0);
    }
    current_stream_launch_ = ++stream_launch_ordinals_[sidx];
    pending_launch_fault_.reset();
    if (!device_lost_ && fault_log_.size() < fault_->config().max_faults) {
      pending_launch_fault_ =
          fault_->launch_fault(stream, current_stream_launch_);
    }
  }
}

int GpuSim::pick_sm(Schedule schedule, std::uint64_t task_index,
                    int warps_per_block) {
  if (schedule == Schedule::kStatic) {
    const std::uint64_t block = task_index / static_cast<std::uint64_t>(
                                                 std::max(1, warps_per_block));
    return static_cast<int>(block % static_cast<std::uint64_t>(spec_.num_sms));
  }
  // Dynamic: least-loaded SM (persistent workers stealing from a shared
  // queue converge to exactly this assignment). The heap is lazy — commits
  // push fresh (weight, sm) entries without removing stale ones — so the
  // top is discarded until it matches the SM's current weight. Ties break
  // toward the lowest SM index, matching a linear argmin scan.
  while (true) {
    const auto& top = load_heap_.front();
    if (sm_load_[static_cast<std::size_t>(top.second)] == top.first) {
      return top.second;
    }
    std::pop_heap(load_heap_.begin(), load_heap_.end(), std::greater<>{});
    load_heap_.pop_back();
  }
}

WarpCtx GpuSim::begin_task(int sm) {
  RDBS_DCHECK(launch_open_);
  RDBS_DCHECK(active_task_ == kNoTask);
  const auto index = static_cast<std::uint32_t>(task_records_.size());
  TaskRecord rec;
  rec.op_begin = static_cast<std::uint32_t>(trace_ops_.size());
  rec.sm = sm;
  task_records_.push_back(rec);
  active_task_ = index;
  return WarpCtx(*this, sm, index, sanitizer_ != nullptr, fault_ != nullptr);
}

void GpuSim::commit_task(const WarpCtx& ctx) {
  RDBS_DCHECK(active_task_ == ctx.task_);
  TaskRecord& rec = task_records_[ctx.task_];
  rec.op_end = static_cast<std::uint32_t>(trace_ops_.size());
  const auto sm = static_cast<std::size_t>(rec.sm);
  sm_load_[sm] += rec.weight;
  load_heap_.emplace_back(sm_load_[sm], rec.sm);
  std::push_heap(load_heap_.begin(), load_heap_.end(), std::greater<>{});
  active_task_ = kNoTask;
}

void GpuSim::replay_shard(int sm) {
  SectoredCache& l1 = memory_.l1(sm);
  std::vector<std::uint64_t>& requests = l2_requests_[static_cast<std::size_t>(sm)];
  requests.clear();
  ShardCounters sc;
  std::array<std::uint64_t, 32> lane_addrs{};
  std::array<std::uint64_t, 32> sector_addrs{};
  const auto conflict_cycles =
      static_cast<std::uint64_t>(spec_.atomic_conflict_cycles);

  for (const std::uint32_t t : sm_tasks_[static_cast<std::size_t>(sm)]) {
    TaskRecord& rec = task_records_[t];
    rec.l2_begin = static_cast<std::uint32_t>(requests.size());
    std::uint64_t cycles = 0;
    for (std::uint32_t i = rec.op_begin; i < rec.op_end; ++i) {
      const TraceOp& op = trace_ops_[i];
      const std::uint32_t lanes = op.lanes;
      const std::uint64_t* src = trace_addrs_.data() + op.addr_begin;
      for (std::uint32_t l = 0; l < lanes; ++l) lane_addrs[l] = src[l];
      sort_addresses(lane_addrs, lanes);

      // One pass over the sorted lanes yields both the distinct-address
      // count (atomic conflicts) and the coalesced distinct-sector list.
      std::uint32_t distinct_addrs = 0;
      std::uint32_t sectors = 0;
      std::uint64_t prev_addr = ~0ull;
      std::uint64_t prev_sector = ~0ull;
      for (std::uint32_t l = 0; l < lanes; ++l) {
        const std::uint64_t addr = lane_addrs[l];
        if (addr != prev_addr) {
          ++distinct_addrs;
          prev_addr = addr;
          const std::uint64_t sector =
              addr & ~static_cast<std::uint64_t>(SectoredCache::kSectorBytes - 1);
          if (sector != prev_sector) {
            sector_addrs[sectors++] = sector;
            prev_sector = sector;
          }
        }
      }

      sc.memory_transactions += sectors;
      cycles += sectors;
      if (op.kind == TraceOp::kAtomic || op.is_volatile()) {
        // Atomics and volatile accesses resolve at L2: they bypass L1 but
        // benefit from L2 residency; only L2 misses travel to DRAM.
        // Same-address lanes serialize for atomics only: lanes minus
        // distinct addresses collide (volatile accesses carry no RMW
        // serialization).
        if (op.kind == TraceOp::kAtomic) {
          const std::uint64_t conflicts = lanes - distinct_addrs;
          sc.atomic_conflicts += conflicts;
          cycles += conflicts * conflict_cycles;
        }
        for (std::uint32_t s = 0; s < sectors; ++s) {
          requests.push_back(sector_addrs[s]);
        }
      } else {
        // Loads and stores probe this SM's L1; stores write through L1 into
        // the write-back L2, so only sectors the L1 could not serve are
        // forwarded as L2 requests (bit 0 marks the cached path).
        sc.l1_sector_accesses += sectors;
        for (std::uint32_t s = 0; s < sectors; ++s) {
          if (l1.access(sector_addrs[s])) {
            ++sc.l1_sector_hits;
          } else {
            requests.push_back(sector_addrs[s] | 1ull);
          }
        }
      }
    }
    rec.cycles += cycles;
    rec.l2_count = static_cast<std::uint32_t>(requests.size()) - rec.l2_begin;
  }
  shard_counters_[static_cast<std::size_t>(sm)] = sc;
}

void GpuSim::replay_launch() {
  // Bucket tasks by SM, preserving canonical task order within each shard.
  for (const int sm : used_sms_) sm_tasks_[static_cast<std::size_t>(sm)].clear();
  used_sms_.clear();
  for (std::uint32_t t = 0; t < task_records_.size(); ++t) {
    const auto sm = static_cast<std::size_t>(task_records_[t].sm);
    if (sm_tasks_[sm].empty()) used_sms_.push_back(task_records_[t].sm);
    sm_tasks_[sm].push_back(t);
  }

  // Pass 1 — per-SM L1 shards. Shards share no mutable state (each has its
  // own L1, counter partials, task-cycle slots and L2 request list), so the
  // pass parallelizes freely; any iteration order yields identical results.
  const auto shard_count = static_cast<std::int64_t>(used_sms_.size());
#ifdef RDBS_PARALLEL
  const int threads = worker_threads();
  if (threads > 1 && shard_count > 1) {
#ifdef RDBS_TSAN
    const int team =
        static_cast<int>(std::min<std::int64_t>(threads, shard_count));
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(team));
    for (int w = 0; w < team; ++w) {
      workers.emplace_back([this, w, team, shard_count] {
        for (std::int64_t i = w; i < shard_count; i += team) {
          replay_shard(used_sms_[static_cast<std::size_t>(i)]);
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
#else
#pragma omp parallel for schedule(dynamic) num_threads(threads)
    for (std::int64_t i = 0; i < shard_count; ++i) {
      replay_shard(used_sms_[static_cast<std::size_t>(i)]);
    }
#endif
  } else {
    for (std::int64_t i = 0; i < shard_count; ++i) {
      replay_shard(used_sms_[static_cast<std::size_t>(i)]);
    }
  }
#else
  for (std::int64_t i = 0; i < shard_count; ++i) {
    replay_shard(used_sms_[static_cast<std::size_t>(i)]);
  }
#endif

  // Pass 2 — the shared L2, replayed serially in canonical task order (the
  // exact request stream a fused serial simulation would produce).
  Counters& c = counters_;
  for (TaskRecord& rec : task_records_) {
    if (rec.l2_count == 0) continue;
    const std::vector<std::uint64_t>& requests =
        l2_requests_[static_cast<std::size_t>(rec.sm)];
    const std::uint32_t end = rec.l2_begin + rec.l2_count;
    std::uint64_t cycles = 0;
    for (std::uint32_t i = rec.l2_begin; i < end; ++i) {
      const std::uint64_t request = requests[i];
      const bool cached = (request & 1ull) != 0;
      const std::uint64_t sector = request & ~1ull;
      ++c.l2_sector_accesses;
      if (memory_.l2_cache().access(sector)) {
        ++c.l2_sector_hits;
        if (cached) cycles += kL2ReplayCycles;
      } else {
        c.dram_bytes += SectoredCache::kSectorBytes;
        launch_dram_bytes_ += SectoredCache::kSectorBytes;
        cycles += kDramReplayCycles;
      }
    }
    rec.cycles += cycles;
  }

  // Deterministic counter reduction: shard partials summed in SM order.
  for (const int sm : used_sms_) {
    const ShardCounters& sc = shard_counters_[static_cast<std::size_t>(sm)];
    c.l1_sector_accesses += sc.l1_sector_accesses;
    c.l1_sector_hits += sc.l1_sector_hits;
    c.memory_transactions += sc.memory_transactions;
    c.atomic_conflicts += sc.atomic_conflicts;
  }
}

void GpuSim::apply_launch_fault(LaunchResult& result) {
  const FaultConfig& cfg = fault_->config();
  std::optional<FaultClass> cls = pending_launch_fault_;
  pending_launch_fault_.reset();
  // Load faults inside this launch may have exhausted the budget after the
  // launch fault was drawn at begin_launch; the budget is a hard cap on
  // injections, so drop it. (Genuine watchdog timeouts below still record —
  // they are observed behavior, not injections.)
  if (cls && fault_log_.size() >= cfg.max_faults) cls.reset();
  FaultClass fired;
  if (cls) {
    fired = *cls;
  } else if (!device_lost_ && cfg.watchdog_ms > 0 &&
             result.ms > cfg.watchdog_ms) {
    // Cost-clock watchdog: a kernel whose modeled time exceeds the deadline
    // is killed and reported even when no fault was injected — a genuine
    // runaway (e.g. a corrupted frontier exploding a launch) surfaces as a
    // typed kTimeout instead of silently inflating the timeline.
    fired = FaultClass::kTimeout;
  } else {
    return;
  }
  GpuFault fault;
  fault.cls = fired;
  fault.stream = launch_stream_;
  fault.launch = current_stream_launch_;
  switch (fired) {
    case FaultClass::kLaunchFailure:
      // The kernel never started: only the host launch overhead lands on
      // the stream. Record-phase effects stand — the attempt is poisoned
      // and discarded by the engine layer, matching CUDA's asynchronous
      // error model.
      result.ms = spec_.kernel_launch_us * 1e-3;
      break;
    case FaultClass::kTimeout:
      // The kernel hung; the watchdog killed it after watchdog_ms.
      result.ms = std::max(result.ms,
                           cfg.watchdog_ms > 0 ? cfg.watchdog_ms : 25.0);
      break;
    case FaultClass::kStreamStall:
      // Latency-only fault: the stream is held for stall_ms but the
      // launch's work is intact (non-poisoning; batch dispatch naturally
      // routes later queries around the delayed stream).
      result.ms += cfg.stall_ms;
      break;
    case FaultClass::kDeviceLoss:
      device_lost_ = true;
      break;
    default:
      break;
  }
  ++counters_.faults_injected;
  fault_log_.push_back(std::move(fault));
}

LaunchResult GpuSim::end_launch(std::uint64_t tasks, bool host_launch) {
  RDBS_DCHECK(launch_open_);
  RDBS_DCHECK(active_task_ == kNoTask);
  RDBS_DCHECK(tasks == task_records_.size());
  replay_launch();
  if (sanitizer_) {
    sanitizer_->scan_launch(trace_ops_, trace_addrs_, task_records_);
  }
  launch_open_ = false;

  std::fill(sm_cycles_.begin(), sm_cycles_.end(), 0.0);
  std::fill(sm_longest_task_.begin(), sm_longest_task_.end(), 0);
  for (const TaskRecord& rec : task_records_) {
    const auto sm = static_cast<std::size_t>(rec.sm);
    sm_cycles_[sm] += static_cast<double>(rec.cycles);
    sm_longest_task_[sm] = std::max(sm_longest_task_[sm], rec.cycles);
  }

  LaunchResult result;
  result.tasks = tasks;
  double worst_sm_cycles = 0;
  for (int sm = 0; sm < spec_.num_sms; ++sm) {
    const auto i = static_cast<std::size_t>(sm);
    result.busy_cycles += sm_cycles_[i];
    // An SM retires its resident warps at `warp_schedulers` instructions
    // per cycle once enough warps are in flight; a single long warp is the
    // lower bound (no parallelism inside one warp).
    const double sm_time =
        std::max(sm_cycles_[i] / spec_.warp_schedulers,
                 static_cast<double>(sm_longest_task_[i]));
    worst_sm_cycles = std::max(worst_sm_cycles, sm_time);
  }
  const double compute_ms = spec_.cycles_to_ms(worst_sm_cycles);
  const double dram_ms =
      spec_.bytes_to_ms(static_cast<double>(launch_dram_bytes_));
  result.ms = std::max(compute_ms, dram_ms);
  if (host_launch) result.ms += spec_.kernel_launch_us * 1e-3;
  if (fault_) apply_launch_fault(result);
  admit_kernel(launch_stream_, result.ms);
  // Aggregate-throughput floor on cross-stream overlap: the device cannot
  // retire total work faster than all SMs issuing flat out, nor move DRAM
  // traffic beyond peak bandwidth. Each launch's own ms already dominates
  // its contribution here, so a single stream never hits the floor.
  device_work_ms_ += std::max(
      spec_.cycles_to_ms(result.busy_cycles /
                         (static_cast<double>(spec_.num_sms) *
                          spec_.warp_schedulers)),
      dram_ms);
  return result;
}

}  // namespace rdbs::gpusim
