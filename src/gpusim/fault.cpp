#include "gpusim/fault.hpp"

#include <charconv>
#include <sstream>
#include <stdexcept>

#include "common/rng.hpp"

namespace rdbs::gpusim {

const char* fault_class_name(FaultClass cls) {
  switch (cls) {
    case FaultClass::kBitFlipCorrectable: return "bit-flip(ecc-corrected)";
    case FaultClass::kBitFlipUncorrectable: return "bit-flip(uncorrectable)";
    case FaultClass::kLaunchFailure: return "launch-failure";
    case FaultClass::kTimeout: return "timeout";
    case FaultClass::kStreamStall: return "stream-stall";
    case FaultClass::kDeviceLoss: return "device-loss";
  }
  return "unknown";
}

std::string GpuFault::describe() const {
  std::ostringstream out;
  out << fault_class_name(cls) << " gpu" << device << " stream" << stream
      << " launch#" << launch;
  if (cls == FaultClass::kBitFlipCorrectable ||
      cls == FaultClass::kBitFlipUncorrectable) {
    out << " task#" << task << " op#" << op << " bit" << bit << " buffer='"
        << buffer << "'";
  }
  return out.str();
}

FaultConfig parse_fault_spec(std::string_view spec) {
  FaultConfig config;
  config.enabled = true;

  const auto parse_double = [](std::string_view key, std::string_view value) {
    // std::from_chars<double> is incomplete on some libstdc++ versions; go
    // through stod on a bounded copy instead.
    try {
      std::size_t used = 0;
      const std::string text(value);
      const double parsed = std::stod(text, &used);
      if (used != text.size()) throw std::invalid_argument("trailing chars");
      return parsed;
    } catch (const std::exception&) {
      throw std::invalid_argument("bad fault-spec value for '" +
                                  std::string(key) + "': '" +
                                  std::string(value) + "'");
    }
  };

  std::string_view rest = spec;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    std::string_view item = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      throw std::invalid_argument("fault-spec item '" + std::string(item) +
                                  "' is not key=value");
    }
    const std::string_view key = item.substr(0, eq);
    const std::string_view value = item.substr(eq + 1);
    if (key == "seed") {
      config.seed = static_cast<std::uint64_t>(parse_double(key, value));
    } else if (key == "flip") {
      config.bit_flip_per_load = parse_double(key, value);
    } else if (key == "ecc") {
      config.correctable_fraction = parse_double(key, value);
    } else if (key == "launch") {
      config.launch_failure = parse_double(key, value);
    } else if (key == "timeout") {
      config.timeout = parse_double(key, value);
    } else if (key == "stall") {
      config.stream_stall = parse_double(key, value);
    } else if (key == "loss") {
      config.device_loss = parse_double(key, value);
    } else if (key == "watchdog") {
      config.watchdog_ms = parse_double(key, value);
    } else if (key == "stall-ms") {
      config.stall_ms = parse_double(key, value);
    } else if (key == "max") {
      config.max_faults = static_cast<std::uint64_t>(parse_double(key, value));
    } else if (key == "hot") {
      config.hot_stream = static_cast<int>(parse_double(key, value));
    } else if (key == "hot-factor") {
      config.hot_stream_factor = parse_double(key, value);
    } else {
      throw std::invalid_argument("unknown fault-spec key '" +
                                  std::string(key) + "'");
    }
  }
  return config;
}

std::uint64_t FaultInjector::hash(std::uint64_t a, std::uint64_t b,
                                  std::uint64_t c, std::uint64_t d,
                                  std::uint64_t salt) const {
  // Feed the counter key through SplitMix64 one word at a time; mixing the
  // running state between words keeps distinct keys decorrelated.
  std::uint64_t h = config_.seed ^ (salt * 0x9e3779b97f4a7c15ULL);
  h = mix64(h + a);
  h = mix64(h + b);
  h = mix64(h + c);
  h = mix64(h + d);
  return h;
}

double FaultInjector::uniform(std::uint64_t a, std::uint64_t b,
                              std::uint64_t c, std::uint64_t d,
                              std::uint64_t salt) const {
  // 53 high bits -> [0, 1) with full double resolution.
  return static_cast<double>(hash(a, b, c, d, salt) >> 11) * 0x1.0p-53;
}

std::optional<FaultClass> FaultInjector::launch_fault(
    int stream, std::uint64_t launch) const {
  const auto s = static_cast<std::uint64_t>(stream);
  const double scale =
      (config_.hot_stream >= 0 && stream == config_.hot_stream)
          ? config_.hot_stream_factor
          : 1.0;
  if (config_.device_loss > 0 &&
      uniform(s, launch, 0, 0, 1) < config_.device_loss * scale) {
    return FaultClass::kDeviceLoss;
  }
  if (config_.launch_failure > 0 &&
      uniform(s, launch, 0, 0, 2) < config_.launch_failure * scale) {
    return FaultClass::kLaunchFailure;
  }
  if (config_.timeout > 0 &&
      uniform(s, launch, 0, 0, 3) < config_.timeout * scale) {
    return FaultClass::kTimeout;
  }
  if (config_.stream_stall > 0 &&
      uniform(s, launch, 0, 0, 4) < config_.stream_stall * scale) {
    return FaultClass::kStreamStall;
  }
  return std::nullopt;
}

FaultInjector::FlipDecision FaultInjector::load_fault(int stream,
                                                      std::uint64_t launch,
                                                      std::uint32_t task,
                                                      std::uint64_t op) const {
  FlipDecision decision;
  if (config_.bit_flip_per_load <= 0) return decision;
  const auto s = static_cast<std::uint64_t>(stream);
  if (uniform(s, launch, task, op, 5) >= config_.bit_flip_per_load) {
    return decision;
  }
  decision.inject = true;
  decision.correctable =
      uniform(s, launch, task, op, 6) < config_.correctable_fraction;
  const std::uint64_t where = hash(s, launch, task, op, 7);
  decision.lane = static_cast<std::uint32_t>(where & 0x1f);
  decision.bit = static_cast<std::uint32_t>((where >> 5) & 0x3f);
  return decision;
}

}  // namespace rdbs::gpusim
