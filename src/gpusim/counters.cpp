#include "gpusim/counters.hpp"

namespace rdbs::gpusim {

// Single authoritative field list: the three operators below are generated
// from it, so a counter added to the struct but not listed here fails the
// size guard instead of silently dropping out of +=, - or ==.
#define RDBS_GPUSIM_COUNTER_FIELDS(X) \
  X(inst_executed_global_loads)       \
  X(inst_executed_global_stores)      \
  X(inst_executed_atomics)            \
  X(l1_sector_accesses)               \
  X(l1_sector_hits)                   \
  X(l2_sector_accesses)               \
  X(l2_sector_hits)                   \
  X(alu_instructions)                 \
  X(memory_transactions)              \
  X(dram_bytes)                       \
  X(atomic_conflicts)                 \
  X(kernel_launches)                  \
  X(child_launches)                   \
  X(active_lane_ops)                  \
  X(issued_lane_ops)                  \
  X(volatile_accesses)                \
  X(faults_injected)                  \
  X(ecc_corrected)

namespace {
#define RDBS_COUNT_FIELD(name) +1
constexpr std::size_t kListedFields = 0 RDBS_GPUSIM_COUNTER_FIELDS(RDBS_COUNT_FIELD);
#undef RDBS_COUNT_FIELD
// Every Counters member is a std::uint64_t; if a new field is added to the
// struct without extending the list above, this trips.
static_assert(sizeof(Counters) == kListedFields * sizeof(std::uint64_t),
              "Counters field added without updating the operator field list");
}  // namespace

Counters& Counters::operator+=(const Counters& other) {
#define RDBS_ADD_FIELD(name) name += other.name;
  RDBS_GPUSIM_COUNTER_FIELDS(RDBS_ADD_FIELD)
#undef RDBS_ADD_FIELD
  return *this;
}

Counters Counters::operator-(const Counters& other) const {
  Counters d;
#define RDBS_SUB_FIELD(name) d.name = name - other.name;
  RDBS_GPUSIM_COUNTER_FIELDS(RDBS_SUB_FIELD)
#undef RDBS_SUB_FIELD
  return d;
}

bool Counters::operator==(const Counters& other) const {
#define RDBS_EQ_FIELD(name) if (name != other.name) return false;
  RDBS_GPUSIM_COUNTER_FIELDS(RDBS_EQ_FIELD)
#undef RDBS_EQ_FIELD
  return true;
}

}  // namespace rdbs::gpusim
