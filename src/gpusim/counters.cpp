#include "gpusim/counters.hpp"

namespace rdbs::gpusim {

Counters& Counters::operator+=(const Counters& other) {
  inst_executed_global_loads += other.inst_executed_global_loads;
  inst_executed_global_stores += other.inst_executed_global_stores;
  inst_executed_atomics += other.inst_executed_atomics;
  l1_sector_accesses += other.l1_sector_accesses;
  l1_sector_hits += other.l1_sector_hits;
  l2_sector_accesses += other.l2_sector_accesses;
  l2_sector_hits += other.l2_sector_hits;
  alu_instructions += other.alu_instructions;
  memory_transactions += other.memory_transactions;
  dram_bytes += other.dram_bytes;
  atomic_conflicts += other.atomic_conflicts;
  kernel_launches += other.kernel_launches;
  child_launches += other.child_launches;
  active_lane_ops += other.active_lane_ops;
  issued_lane_ops += other.issued_lane_ops;
  volatile_accesses += other.volatile_accesses;
  faults_injected += other.faults_injected;
  ecc_corrected += other.ecc_corrected;
  return *this;
}

Counters Counters::operator-(const Counters& other) const {
  Counters d;
  d.inst_executed_global_loads =
      inst_executed_global_loads - other.inst_executed_global_loads;
  d.inst_executed_global_stores =
      inst_executed_global_stores - other.inst_executed_global_stores;
  d.inst_executed_atomics = inst_executed_atomics - other.inst_executed_atomics;
  d.l1_sector_accesses = l1_sector_accesses - other.l1_sector_accesses;
  d.l1_sector_hits = l1_sector_hits - other.l1_sector_hits;
  d.l2_sector_accesses = l2_sector_accesses - other.l2_sector_accesses;
  d.l2_sector_hits = l2_sector_hits - other.l2_sector_hits;
  d.alu_instructions = alu_instructions - other.alu_instructions;
  d.memory_transactions = memory_transactions - other.memory_transactions;
  d.dram_bytes = dram_bytes - other.dram_bytes;
  d.atomic_conflicts = atomic_conflicts - other.atomic_conflicts;
  d.kernel_launches = kernel_launches - other.kernel_launches;
  d.child_launches = child_launches - other.child_launches;
  d.active_lane_ops = active_lane_ops - other.active_lane_ops;
  d.issued_lane_ops = issued_lane_ops - other.issued_lane_ops;
  d.volatile_accesses = volatile_accesses - other.volatile_accesses;
  d.faults_injected = faults_injected - other.faults_injected;
  d.ecc_corrected = ecc_corrected - other.ecc_corrected;
  return d;
}

bool Counters::operator==(const Counters& other) const {
  return inst_executed_global_loads == other.inst_executed_global_loads &&
         inst_executed_global_stores == other.inst_executed_global_stores &&
         inst_executed_atomics == other.inst_executed_atomics &&
         l1_sector_accesses == other.l1_sector_accesses &&
         l1_sector_hits == other.l1_sector_hits &&
         l2_sector_accesses == other.l2_sector_accesses &&
         l2_sector_hits == other.l2_sector_hits &&
         alu_instructions == other.alu_instructions &&
         memory_transactions == other.memory_transactions &&
         dram_bytes == other.dram_bytes &&
         atomic_conflicts == other.atomic_conflicts &&
         kernel_launches == other.kernel_launches &&
         child_launches == other.child_launches &&
         active_lane_ops == other.active_lane_ops &&
         issued_lane_ops == other.issued_lane_ops &&
         volatile_accesses == other.volatile_accesses &&
         faults_injected == other.faults_injected &&
         ecc_corrected == other.ecc_corrected;
}

}  // namespace rdbs::gpusim
