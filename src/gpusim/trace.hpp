// Per-launch memory trace records shared between the simulator core
// (sim.cpp records and replays them) and the sanitizer (sanitizer.cpp scans
// them after replay). One launch at a time: the trace is cleared by
// begin_launch and consumed by end_launch.
//
// The index of an op in this trace is also the memory-op ordinal in the
// fault injector's counter key (gpusim/fault.hpp): it is assigned during
// the serial record phase, so fault plans keyed on it are independent of
// the replay worker count.
#pragma once

#include <cstdint>

namespace rdbs::gpusim {

// One warp-level memory instruction in the launch trace. `addr_begin`
// indexes the launch's address pool (one entry per active lane).
//
// Kinds:
//   0  plain load        (L1-cached)
//   1  plain store       (write-through L1)
//   2  atomic            (L1 bypass, resolves at L2, conflict serialization)
//   3  volatile load     (L1 bypass — "updates immediately visible")
//   4  volatile store    (L1 bypass)
//
// Volatile accesses model the paper's `volatile` / st.cg queue traffic:
// they skip the L1 like atomics (no stale-line reuse, every access reaches
// the coherence point) but carry no same-address serialization cost.
struct TraceOp {
  std::uint8_t kind;
  std::uint8_t lanes;
  std::uint32_t addr_begin;

  static constexpr std::uint8_t kLoad = 0;
  static constexpr std::uint8_t kStore = 1;
  static constexpr std::uint8_t kAtomic = 2;
  static constexpr std::uint8_t kVolatileLoad = 3;
  static constexpr std::uint8_t kVolatileStore = 4;

  bool is_read() const { return kind == kLoad || kind == kVolatileLoad; }
  bool is_plain_store() const { return kind == kStore; }
  bool is_write() const {
    return kind == kStore || kind == kAtomic || kind == kVolatileStore;
  }
  bool is_volatile() const {
    return kind == kVolatileLoad || kind == kVolatileStore;
  }
};

// Per-task record: trace extent, placement, record-time cycles and the
// scheduling weight, plus this task's slice of its SM's L2-request list.
struct TaskRecord {
  std::uint32_t op_begin = 0;
  std::uint32_t op_end = 0;
  std::int32_t sm = 0;
  std::uint64_t weight = 0;  // cache-independent load estimate (scheduling)
  std::uint64_t cycles = 0;  // true cycles: record-time + replay charges
  std::uint32_t l2_begin = 0;
  std::uint32_t l2_count = 0;
};

}  // namespace rdbs::gpusim
