// Per-launch memory trace shared between the simulator core (sim.cpp
// records and replays it) and the sanitizer (sanitizer.cpp scans it after
// replay). One launch at a time: the trace is cleared by begin_launch and
// consumed by end_launch.
//
// The ordinal of an op in this trace is also the memory-op ordinal in the
// fault injector's counter key (gpusim/fault.hpp): it is assigned during
// the serial record phase, so fault plans keyed on it are independent of
// the replay worker count AND of the trace layout (the simulator counts
// ops itself; see GpuSim::launch_ops_).
//
// Two storage layouts, selectable per simulator (GpuSim::set_trace_layout):
//
//   kCompressed (default) — structure-of-arrays: one meta byte per op
//     (kind + a record-time "lanes already sorted" flag), one lane-count
//     byte per op, and a shared byte stream of zigzag-varint address
//     deltas. The delta chain resets at every task boundary
//     (TaskRecord::addr_begin is the task's byte offset), so per-SM replay
//     shards can decode their tasks independently and in parallel. Warp
//     access patterns are overwhelmingly small-stride (consecutive lanes
//     touch consecutive elements), so most deltas fit in one byte and the
//     encoded trace is typically 4-8x smaller than the AoS layout — the
//     difference between a SCALE-21 (2M+ vertex) workload fitting in CI
//     memory or not.
//
//   kLegacy — the original array-of-structs TraceOp records plus a flat
//     u64 lane-address pool. Kept as the bit-exact baseline for the
//     layout-equivalence tests and the throughput benchmarks.
//
// Both layouts decode through the same OpCursor so consumers (replay,
// gsan) are layout-blind. Lane addresses always decode in original lane
// order — sanitizer reports depend on first-touch discovery order.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/macros.hpp"

namespace rdbs::gpusim {

// One warp-level memory instruction in the legacy (AoS) layout.
// `addr_begin` indexes the launch's address pool (one entry per active
// lane). Also the home of the kind constants shared by both layouts.
//
// Kinds:
//   0  plain load        (L1-cached)
//   1  plain store       (write-through L1)
//   2  atomic            (L1 bypass, resolves at L2, conflict serialization)
//   3  volatile load     (L1 bypass — "updates immediately visible")
//   4  volatile store    (L1 bypass)
//
// Volatile accesses model the paper's `volatile` / st.cg queue traffic:
// they skip the L1 like atomics (no stale-line reuse, every access reaches
// the coherence point) but carry no same-address serialization cost.
struct TraceOp {
  std::uint8_t kind;
  std::uint8_t lanes;
  std::uint32_t addr_begin;

  static constexpr std::uint8_t kLoad = 0;
  static constexpr std::uint8_t kStore = 1;
  static constexpr std::uint8_t kAtomic = 2;
  static constexpr std::uint8_t kVolatileLoad = 3;
  static constexpr std::uint8_t kVolatileStore = 4;

  static constexpr bool kind_is_read(std::uint8_t k) {
    return k == kLoad || k == kVolatileLoad;
  }
  static constexpr bool kind_is_write(std::uint8_t k) {
    return k == kStore || k == kAtomic || k == kVolatileStore;
  }
  static constexpr bool kind_is_volatile(std::uint8_t k) {
    return k == kVolatileLoad || k == kVolatileStore;
  }
  // Synchronized accesses — atomics and volatiles — resolve at the
  // coherence point and pair safely with each other under the sanitizer's
  // race rules (intra-launch and cross-stream alike); only plain accesses
  // conflict.
  static constexpr bool kind_is_synced(std::uint8_t k) {
    return k == kAtomic || kind_is_volatile(k);
  }

  bool is_read() const { return kind_is_read(kind); }
  bool is_plain_store() const { return kind == kStore; }
  bool is_write() const { return kind_is_write(kind); }
  bool is_volatile() const { return kind_is_volatile(kind); }
  bool is_synced() const { return kind_is_synced(kind); }
};

// Per-task record: trace extent, placement, record-time cycles and the
// scheduling weight, plus this task's slice of its SM's L2-request list.
// `addr_begin` is the compressed address stream's byte offset at op_begin
// (unused by the legacy layout, whose ops carry pool indices).
struct TaskRecord {
  std::uint32_t op_begin = 0;
  std::uint32_t op_end = 0;
  std::int32_t sm = 0;
  std::uint64_t weight = 0;  // cache-independent load estimate (scheduling)
  std::uint64_t cycles = 0;  // true cycles: record-time + replay charges
  std::uint32_t l2_begin = 0;
  std::uint32_t l2_count = 0;
  std::uint64_t addr_begin = 0;
};

enum class TraceLayout : std::uint8_t {
  kCompressed = 0,  // SoA meta/lanes arrays + varint delta address stream
  kLegacy = 1,      // AoS TraceOp records + flat u64 address pool
};

class LaunchTrace {
 public:
  // --- layout control -------------------------------------------------------
  TraceLayout layout() const { return layout_; }
  // Switching layouts is only legal on an empty trace (between launches).
  void set_layout(TraceLayout layout) {
    RDBS_DCHECK(num_ops() == 0);
    layout_ = layout;
  }

  void clear() {
    op_meta_.clear();
    op_lanes_.clear();
    addr_bytes_.clear();
    legacy_ops_.clear();
    pool_.clear();
    total_lanes_ = 0;
    prev_addr_ = 0;
  }

  std::size_t num_ops() const {
    return layout_ == TraceLayout::kLegacy ? legacy_ops_.size()
                                           : op_meta_.size();
  }
  std::uint64_t total_lanes() const { return total_lanes_; }
  // Byte offset of the compressed address stream's write head — snapshot
  // into TaskRecord::addr_begin at task start.
  std::uint64_t addr_stream_offset() const { return addr_bytes_.size(); }

  // Current encoded footprint of this launch's trace.
  std::uint64_t bytes_in_use() const {
    if (layout_ == TraceLayout::kLegacy) {
      return legacy_ops_.size() * sizeof(TraceOp) +
             pool_.size() * sizeof(std::uint64_t);
    }
    return op_meta_.size() + op_lanes_.size() + addr_bytes_.size();
  }
  // What the AoS layout would need for the same ops (capacity reporting).
  std::uint64_t legacy_equivalent_bytes() const {
    return num_ops() * sizeof(TraceOp) + total_lanes_ * sizeof(std::uint64_t);
  }

  // --- record API (serial record phase only) --------------------------------
  // Staging for one warp op's lane addresses, filled by the caller and
  // sealed by append_op. Legacy layout: the pool tail, so addresses land in
  // their final place. Compressed: a fixed 32-slot staging buffer that
  // append_op encodes into the delta stream.
  std::uint64_t* lane_slots(std::size_t lanes) {
    RDBS_DCHECK(lanes <= 32);
    if (layout_ == TraceLayout::kLegacy) {
      pool_.resize(pool_.size() + lanes);
      return pool_.data() + (pool_.size() - lanes);
    }
    return staging_.data();
  }

  void append_op(std::uint8_t kind, std::uint32_t lanes) {
    total_lanes_ += lanes;
    if (layout_ == TraceLayout::kLegacy) {
      const auto addr_begin = static_cast<std::uint32_t>(pool_.size() - lanes);
      legacy_ops_.push_back(
          TraceOp{kind, static_cast<std::uint8_t>(lanes), addr_begin});
      return;
    }
    // Encode the staged lane addresses as zigzag-varint deltas against the
    // running chain (previous lane of this task, across op boundaries). The
    // sorted flag falls out of the same pass: non-decreasing within the op.
    bool sorted = true;
    std::uint64_t intra_prev = 0;
    for (std::uint32_t l = 0; l < lanes; ++l) {
      const std::uint64_t addr = staging_[l];
      if (l > 0 && addr < intra_prev) sorted = false;
      intra_prev = addr;
      const auto delta =
          static_cast<std::int64_t>(addr) - static_cast<std::int64_t>(prev_addr_);
      put_varint(zigzag(delta));
      prev_addr_ = addr;
    }
    op_meta_.push_back(static_cast<std::uint8_t>(
        kind | (sorted ? kSortedFlag : 0)));
    op_lanes_.push_back(static_cast<std::uint8_t>(lanes));
  }

  // Resets the delta chain so the next op encodes its first lane against
  // base 0 — called at every task boundary, making tasks independently
  // decodable (parallel per-SM replay shards).
  void begin_task() { prev_addr_ = 0; }

  // --- decode API ------------------------------------------------------------
  struct OpView {
    std::uint8_t kind = 0;
    std::uint8_t lanes = 0;
    // Record-time hint: lane addresses are already non-decreasing, so the
    // replay's coalescing scan may skip its sort. Always false for the
    // legacy layout (the baseline does not pay for the record-time check).
    bool sorted = false;
    // Lane addresses in original lane order, valid until the next next().
    const std::uint64_t* addrs = nullptr;

    bool is_read() const { return TraceOp::kind_is_read(kind); }
    bool is_plain_store() const { return kind == TraceOp::kStore; }
    bool is_write() const { return TraceOp::kind_is_write(kind); }
    bool is_volatile() const { return TraceOp::kind_is_volatile(kind); }
    bool is_synced() const { return TraceOp::kind_is_synced(kind); }
  };

  // Sequential decoder over one task's ops [op_begin, op_end). Decodes each
  // op's lane addresses into an internal 32-slot buffer (mutable via
  // lanes_mutable(), so the replay can sort in place without a copy).
  class OpCursor {
   public:
    bool next(OpView& view) {
      if (op_ == op_end_) return false;
      if (trace_->layout_ == TraceLayout::kLegacy) {
        const TraceOp& op = trace_->legacy_ops_[op_];
        std::memcpy(buf_.data(), trace_->pool_.data() + op.addr_begin,
                    op.lanes * sizeof(std::uint64_t));
        view.kind = op.kind;
        view.lanes = op.lanes;
        view.sorted = false;
      } else {
        const std::uint8_t meta = trace_->op_meta_[op_];
        const std::uint8_t lanes = trace_->op_lanes_[op_];
        const std::uint8_t* p = trace_->addr_bytes_.data() + byte_;
        for (std::uint32_t l = 0; l < lanes; ++l) {
          std::uint64_t z = 0;
          std::uint32_t shift = 0;
          std::uint8_t b;
          do {
            b = *p++;
            z |= static_cast<std::uint64_t>(b & 0x7f) << shift;
            shift += 7;
          } while (b & 0x80);
          prev_ = static_cast<std::uint64_t>(
              static_cast<std::int64_t>(prev_) + unzigzag(z));
          buf_[l] = prev_;
        }
        byte_ = static_cast<std::uint64_t>(p - trace_->addr_bytes_.data());
        view.kind = meta & kKindMask;
        view.lanes = lanes;
        view.sorted = (meta & kSortedFlag) != 0;
      }
      view.addrs = buf_.data();
      ++op_;
      return true;
    }

    // The decoded lane addresses of the most recent next(), mutable so the
    // coalescing scan can sort in place.
    std::uint64_t* lanes_mutable() { return buf_.data(); }

   private:
    friend class LaunchTrace;
    OpCursor(const LaunchTrace& trace, std::uint32_t op_begin,
             std::uint32_t op_end, std::uint64_t addr_byte_begin)
        : trace_(&trace),
          op_(op_begin),
          op_end_(op_end),
          byte_(addr_byte_begin) {}

    const LaunchTrace* trace_;
    std::uint32_t op_;
    std::uint32_t op_end_;
    std::uint64_t byte_;  // compressed stream position (kCompressed only)
    std::uint64_t prev_ = 0;
    std::array<std::uint64_t, 32> buf_{};
  };

  OpCursor task_cursor(const TaskRecord& rec) const {
    return OpCursor(*this, rec.op_begin, rec.op_end, rec.addr_begin);
  }

 private:
  static constexpr std::uint8_t kKindMask = 0x07;
  static constexpr std::uint8_t kSortedFlag = 0x08;

  static std::uint64_t zigzag(std::int64_t d) {
    return (static_cast<std::uint64_t>(d) << 1) ^
           static_cast<std::uint64_t>(d >> 63);
  }
  static std::int64_t unzigzag(std::uint64_t z) {
    return static_cast<std::int64_t>(z >> 1) ^
           -static_cast<std::int64_t>(z & 1);
  }
  void put_varint(std::uint64_t v) {
    while (v >= 0x80) {
      addr_bytes_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    addr_bytes_.push_back(static_cast<std::uint8_t>(v));
  }

  TraceLayout layout_ = TraceLayout::kCompressed;

  // kCompressed: SoA op arrays + shared delta stream + encoder state.
  std::vector<std::uint8_t> op_meta_;
  std::vector<std::uint8_t> op_lanes_;
  std::vector<std::uint8_t> addr_bytes_;
  std::array<std::uint64_t, 32> staging_{};
  std::uint64_t prev_addr_ = 0;

  // kLegacy: AoS records + flat lane-address pool.
  std::vector<TraceOp> legacy_ops_;
  std::vector<std::uint64_t> pool_;

  std::uint64_t total_lanes_ = 0;
};

}  // namespace rdbs::gpusim
