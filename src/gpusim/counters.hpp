// Profiling counters matching the nvprof metrics the paper reports in
// Fig. 10, plus the internal quantities the cost model aggregates.
#pragma once

#include <cstdint>

namespace rdbs::gpusim {

struct Counters {
  // --- nvprof-named metrics (paper Fig. 10) -------------------------------
  std::uint64_t inst_executed_global_loads = 0;   // warp-level load instrs
  std::uint64_t inst_executed_global_stores = 0;  // warp-level store instrs
  std::uint64_t inst_executed_atomics = 0;        // warp-level atom/red/CAS
  std::uint64_t l1_sector_accesses = 0;           // 32B sector probes
  std::uint64_t l1_sector_hits = 0;
  std::uint64_t l2_sector_accesses = 0;           // L1-miss / atomic probes
  std::uint64_t l2_sector_hits = 0;

  // --- cost-model internals ------------------------------------------------
  std::uint64_t alu_instructions = 0;   // warp-level non-memory instrs
  std::uint64_t memory_transactions = 0;  // 32B sectors moved L1<->warp
  std::uint64_t dram_bytes = 0;           // bytes fetched on L1 misses
  std::uint64_t atomic_conflicts = 0;     // same-address lane collisions
  std::uint64_t kernel_launches = 0;      // host-side launches
  std::uint64_t child_launches = 0;       // dynamic-parallelism launches
  std::uint64_t active_lane_ops = 0;      // lanes doing useful work
  std::uint64_t issued_lane_ops = 0;      // lanes occupied (incl. disabled)
  // Volatile (L1-bypassing) loads/stores. These also count into the
  // inst_executed_global_* totals above; this tracks how much of the
  // traffic took the "updates immediately visible" path the paper's
  // asynchronous queues rely on.
  std::uint64_t volatile_accesses = 0;

  // --- fault injection (gfi; see gpusim/fault.hpp) -------------------------
  // Events the injector placed on this simulator (all classes, including
  // ECC-corrected flips and watchdog-detected runaways).
  std::uint64_t faults_injected = 0;
  // The subset of faults_injected that ECC corrected in place (benign).
  std::uint64_t ecc_corrected = 0;

  double l2_hit_rate() const {
    return l2_sector_accesses == 0
               ? 0.0
               : static_cast<double>(l2_sector_hits) /
                     static_cast<double>(l2_sector_accesses);
  }
  double global_hit_rate() const {
    return l1_sector_accesses == 0
               ? 0.0
               : static_cast<double>(l1_sector_hits) /
                     static_cast<double>(l1_sector_accesses);
  }
  // Total warp-level instructions issued (ALU + loads + stores + atomics) —
  // the numerator of the MWIPS throughput metric.
  std::uint64_t warp_instructions() const {
    return alu_instructions + inst_executed_global_loads +
           inst_executed_global_stores + inst_executed_atomics;
  }
  // SIMT lane utilization: 1.0 means no divergence waste.
  double lane_efficiency() const {
    return issued_lane_ops == 0
               ? 1.0
               : static_cast<double>(active_lane_ops) /
                     static_cast<double>(issued_lane_ops);
  }

  Counters& operator+=(const Counters& other);
  // Per-query counter deltas: batch engines snapshot the shared simulator's
  // counters before a query and subtract after. All counters are monotone
  // within a simulator lifetime, so the subtraction never underflows.
  Counters operator-(const Counters& other) const;
  // Exact (bitwise) comparison — the parallel-determinism tests assert that
  // every counter is identical across worker-thread counts.
  bool operator==(const Counters& other) const;
};

}  // namespace rdbs::gpusim
