// Set-associative, sectored L1 cache model.
//
// Tags are kept at cache-line granularity (128B) with a per-sector valid
// mask (4 x 32B sectors per line), matching how Volta's unified L1 counts
// the nvprof `global_hit_rate` metric: a probe hits iff the 32B sector is
// present. Replacement is LRU within a set. Fully deterministic.
#pragma once

#include <cstdint>
#include <vector>

namespace rdbs::gpusim {

class SectoredCache {
 public:
  // capacity_bytes / line_bytes lines, organized into `ways`-way sets.
  SectoredCache(std::size_t capacity_bytes, int line_bytes, int ways);

  // Probes the sector containing `address`. On miss, fills the sector
  // (allocating / evicting a line as needed). Returns true on hit.
  bool access(std::uint64_t address);

  void reset();

  static constexpr int kSectorBytes = 32;

 private:
  struct Line {
    std::uint64_t tag = ~0ull;
    std::uint32_t sector_mask = 0;  // which sectors are present
    std::uint64_t lru_stamp = 0;
  };

  int line_bytes_;
  int ways_;
  std::size_t num_sets_;
  int sectors_per_line_;
  std::uint64_t tick_ = 0;
  std::vector<Line> lines_;  // num_sets_ * ways_, set-major
};

}  // namespace rdbs::gpusim
