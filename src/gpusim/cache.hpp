// Set-associative, sectored L1 cache model.
//
// Tags are kept at cache-line granularity (128B) with a per-sector valid
// mask (4 x 32B sectors per line), matching how Volta's unified L1 counts
// the nvprof `global_hit_rate` metric: a probe hits iff the 32B sector is
// present. Replacement is LRU within a set. Fully deterministic.
//
// Two probe entry points:
//   access(address)          — one sector, the original scalar probe.
//   access_line(line, mask)  — every requested sector of ONE line in a
//     single tag lookup. Bit-for-bit equivalent to probing the sectors of
//     `mask` in ascending order through access(): the LRU victim choice
//     depends only on the other lines' stamps (unchanged during the
//     batch), the final stamp equals the final tick either way, and the
//     hit mask is computed against the pre-probe sector mask. The replay
//     coalesces warp accesses into (line, sector-mask) pairs, so this
//     amortizes the per-set way scan over up to sectors-per-line probes.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

namespace rdbs::gpusim {

class SectoredCache {
 public:
  // capacity_bytes / line_bytes lines, organized into `ways`-way sets.
  SectoredCache(std::size_t capacity_bytes, int line_bytes, int ways);

  // Probes the sector containing `address`. On miss, fills the sector
  // (allocating / evicting a line as needed). Returns true on hit.
  bool access(std::uint64_t address) {
    const std::uint64_t line_addr = line_of(address);
    const auto sector = static_cast<std::uint32_t>(
        (address >> kSectorShift) &
        static_cast<std::uint64_t>(sectors_per_line_ - 1));
    return access_line(line_addr, 1u << sector) != 0;
  }

  // Probes the sectors of `mask` (bit i = sector i) within the line with
  // index `line_addr` (= address / line_bytes). Returns the mask of sectors
  // that hit; misses are filled. See header comment for the equivalence to
  // per-sector access() calls. Defined inline: this is the innermost loop
  // of both the replay and the fused record path (tens of millions of
  // probes per engine run).
  std::uint32_t access_line(std::uint64_t line_addr, std::uint32_t mask) {
    const std::size_t set = set_of_line(line_addr);
    const std::size_t base = set * static_cast<std::size_t>(ways_);
    std::uint64_t* tags = tags_.data() + base;
    tick_ += static_cast<std::uint64_t>(std::popcount(mask));

    // Hit path: tag present; sectors of `mask` already valid are hits, the
    // rest fill within the resident line. The tag scan walks a contiguous
    // 8B-per-way array (a 16-way set is two host cache lines), touching the
    // mask/stamp columns only for the one way that hits.
    for (int w = 0; w < ways_; ++w) {
      if (tags[w] == line_addr) {
        const std::size_t slot = base + static_cast<std::size_t>(w);
        const std::uint32_t hits = sector_masks_[slot] & mask;
        sector_masks_[slot] |= mask;
        lru_stamps_[slot] = tick_;
        return hits;
      }
    }

    // Miss: evict the LRU way and fill just the requested sectors.
    const std::uint64_t* stamps = lru_stamps_.data() + base;
    int victim = 0;
    for (int w = 1; w < ways_; ++w) {
      if (stamps[w] < stamps[victim]) victim = w;
    }
    const std::size_t slot = base + static_cast<std::size_t>(victim);
    tags_[slot] = line_addr;
    sector_masks_[slot] = mask;
    lru_stamps_[slot] = tick_;
    return 0;
  }

  void reset();

  std::uint64_t line_of(std::uint64_t address) const {
    return address >> line_shift_;
  }
  std::size_t num_sets() const { return num_sets_; }
  // The set a line maps to — exposed so the replay's binned L2 pass can
  // bucket requests by set (cross-set probes are independent).
  std::size_t set_of_line(std::uint64_t line_addr) const {
    if (sets_pow2_) {
      return static_cast<std::size_t>(line_addr) & (num_sets_ - 1);
    }
    return static_cast<std::size_t>(line_addr) % num_sets_;
  }

  static constexpr int kSectorBytes = 32;
  static constexpr int kSectorShift = 5;

 private:
  int line_bytes_;
  int ways_;
  std::size_t num_sets_;
  int sectors_per_line_;
  int line_shift_;       // log2(line_bytes); line size must be a power of 2
  bool sets_pow2_;       // num_sets is a power of 2 (L1 yes; V100 L2 no)
  std::uint64_t tick_ = 0;
  // Structure-of-arrays line metadata, num_sets_ * ways_ entries each,
  // set-major. Split by column so the hit-path tag scan streams through
  // contiguous tags without dragging masks and stamps into the host cache —
  // with tens of millions of probes against a megabyte-scale L2 table, the
  // layout is worth ~20% of replay wall time. An empty way carries tag
  // ~0ull (no valid line index reaches it: addresses are < 2^63).
  std::vector<std::uint64_t> tags_;
  std::vector<std::uint32_t> sector_masks_;  // which sectors are present
  std::vector<std::uint64_t> lru_stamps_;
};

}  // namespace rdbs::gpusim
