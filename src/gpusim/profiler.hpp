// nvprof-style textual report over a Counters snapshot — the simulator's
// analogue of `nvprof --metrics ...` output used for the paper's Fig. 10.
#pragma once

#include <string>

#include "gpusim/counters.hpp"
#include "gpusim/device.hpp"

namespace rdbs::gpusim {

// Multi-line human-readable metric report (one "metric  value" row per
// counter, matching nvprof's naming where one exists).
std::string profiler_report(const Counters& counters,
                            const DeviceSpec& spec);

// Single CSV row (+ header helper) for machine consumption.
std::string profiler_csv_header();
std::string profiler_csv_row(const std::string& label,
                             const Counters& counters);

}  // namespace rdbs::gpusim
