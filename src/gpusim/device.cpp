#include "gpusim/device.hpp"

namespace rdbs::gpusim {

DeviceSpec v100() {
  DeviceSpec spec;
  spec.name = "V100";
  spec.num_sms = 80;
  spec.warp_schedulers = 4;
  spec.clock_ghz = 1.38;
  spec.mem_bandwidth_gbps = 900.0;
  spec.l1_kb_per_sm = 128;
  spec.l2_kb = 6144;
  return spec;
}

DeviceSpec tesla_t4() {
  DeviceSpec spec;
  spec.name = "T4";
  spec.num_sms = 40;
  spec.warp_schedulers = 4;
  spec.clock_ghz = 1.59;
  spec.mem_bandwidth_gbps = 320.0;
  spec.l1_kb_per_sm = 64;
  spec.l2_kb = 4096;
  return spec;
}

DeviceSpec test_device() {
  DeviceSpec spec;
  spec.name = "testdev";
  spec.num_sms = 4;
  spec.warp_schedulers = 2;
  spec.clock_ghz = 1.0;
  spec.mem_bandwidth_gbps = 100.0;
  spec.l1_kb_per_sm = 4;
  spec.l2_kb = 64;
  spec.kernel_launch_us = 5.0;
  spec.child_launch_us = 0.5;
  // Small cap so concurrency-limit effects are visible in unit tests.
  spec.max_concurrent_kernels = 4;
  return spec;
}

}  // namespace rdbs::gpusim
