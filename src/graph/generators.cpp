#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/macros.hpp"
#include "common/rng.hpp"

namespace rdbs::graph {

EdgeList generate_kronecker(const KroneckerParams& params) {
  RDBS_CHECK(params.scale > 0 && params.scale < 32);
  RDBS_CHECK(params.edgefactor > 0);
  const double d = 1.0 - params.a - params.b - params.c;
  RDBS_CHECK_MSG(d > 0.0, "Kronecker probabilities must sum below 1");

  const VertexId n = VertexId(1) << params.scale;
  const EdgeIndex m =
      static_cast<EdgeIndex>(params.edgefactor) * static_cast<EdgeIndex>(n);

  Xoshiro256 rng(params.seed);
  EdgeList out;
  out.num_vertices = n;
  out.edges.reserve(m);

  // Graph500-style noisy R-MAT: perturb the quadrant probabilities a little
  // at each level to avoid exact self-similarity artifacts.
  const double ab = params.a + params.b;
  const double c_norm = params.c / (params.c + d);

  for (EdgeIndex i = 0; i < m; ++i) {
    VertexId src = 0;
    VertexId dst = 0;
    for (int level = 0; level < params.scale; ++level) {
      const double r1 = rng.uniform_real();
      const double r2 = rng.uniform_real();
      const bool src_bit = r1 > ab;
      const bool dst_bit =
          r2 > (src_bit ? c_norm : params.a / ab);
      src = (src << 1) | static_cast<VertexId>(src_bit);
      dst = (dst << 1) | static_cast<VertexId>(dst_bit);
    }
    out.edges.push_back({src, dst, 1.0});
  }

  if (params.permute_labels) {
    // Deterministic permutation derived from the seed, applied to both
    // endpoints; destroys the degree/label correlation of raw R-MAT.
    std::vector<VertexId> perm(n);
    std::iota(perm.begin(), perm.end(), VertexId{0});
    Xoshiro256 perm_rng(params.seed ^ 0x5eed5a17c0ffee00ULL);
    for (VertexId i = n; i > 1; --i) {
      const auto j = static_cast<VertexId>(perm_rng.next_below(i));
      std::swap(perm[i - 1], perm[j]);
    }
    for (auto& e : out.edges) {
      e.src = perm[e.src];
      e.dst = perm[e.dst];
    }
  }
  return out;
}

EdgeList generate_grid(const GridParams& params) {
  RDBS_CHECK(params.width > 0 && params.height > 0);
  const VertexId n = params.width * params.height;
  Xoshiro256 rng(params.seed);

  EdgeList out;
  out.num_vertices = n;
  auto vertex_at = [&](VertexId x, VertexId y) {
    return y * params.width + x;
  };
  for (VertexId y = 0; y < params.height; ++y) {
    for (VertexId x = 0; x < params.width; ++x) {
      const VertexId v = vertex_at(x, y);
      if (x + 1 < params.width && rng.bernoulli(params.keep_probability)) {
        out.add_edge(v, vertex_at(x + 1, y), 1.0);
      }
      if (y + 1 < params.height && rng.bernoulli(params.keep_probability)) {
        out.add_edge(v, vertex_at(x, y + 1), 1.0);
      }
    }
  }
  return out;
}

EdgeList generate_chung_lu(const ChungLuParams& params) {
  RDBS_CHECK(params.num_vertices > 1);
  RDBS_CHECK(params.gamma > 2.0);
  const VertexId n = params.num_vertices;
  Xoshiro256 rng(params.seed);

  // Target expected degrees w_v proportional to (v+1)^(-1/(gamma-1)).
  const double exponent = -1.0 / (params.gamma - 1.0);
  std::vector<double> cumulative(n + 1, 0.0);
  for (VertexId v = 0; v < n; ++v) {
    cumulative[v + 1] =
        cumulative[v] + std::pow(static_cast<double>(v) + 1.0, exponent);
  }
  const double total = cumulative[n];

  // Sample both endpoints of each edge from the weight distribution
  // (equivalent to Chung-Lu up to the usual multi-edge caveat, which the
  // CSR builder's dedup handles).
  auto sample_vertex = [&]() -> VertexId {
    const double r = rng.uniform_real() * total;
    const auto it =
        std::upper_bound(cumulative.begin(), cumulative.end(), r);
    const auto idx = static_cast<VertexId>(
        std::distance(cumulative.begin(), it));
    return idx == 0 ? 0 : std::min<VertexId>(idx - 1, n - 1);
  };

  EdgeList out;
  out.num_vertices = n;
  out.edges.reserve(params.num_edges);
  for (EdgeIndex i = 0; i < params.num_edges; ++i) {
    out.add_edge(sample_vertex(), sample_vertex(), 1.0);
  }
  return out;
}

EdgeList generate_small_world(const SmallWorldParams& params) {
  RDBS_CHECK(params.num_vertices > static_cast<VertexId>(params.ring_degree));
  RDBS_CHECK(params.ring_degree >= 2);
  const VertexId n = params.num_vertices;
  Xoshiro256 rng(params.seed);

  EdgeList out;
  out.num_vertices = n;
  const int half = params.ring_degree / 2;
  for (VertexId v = 0; v < n; ++v) {
    for (int k = 1; k <= half; ++k) {
      VertexId dst = (v + static_cast<VertexId>(k)) % n;
      if (rng.bernoulli(params.rewire_probability)) {
        dst = static_cast<VertexId>(rng.next_below(n));
        if (dst == v) dst = (dst + 1) % n;
      }
      out.add_edge(v, dst, 1.0);
    }
  }
  return out;
}

EdgeList generate_uniform_random(const UniformRandomParams& params) {
  RDBS_CHECK(params.num_vertices > 1);
  Xoshiro256 rng(params.seed);
  EdgeList out;
  out.num_vertices = params.num_vertices;
  out.edges.reserve(params.num_edges);
  for (EdgeIndex i = 0; i < params.num_edges; ++i) {
    const auto src = static_cast<VertexId>(rng.next_below(params.num_vertices));
    auto dst = static_cast<VertexId>(rng.next_below(params.num_vertices));
    if (dst == src) dst = (dst + 1) % params.num_vertices;
    out.add_edge(src, dst, 1.0);
  }
  return out;
}

EdgeList generate_star_heavy(const StarHeavyParams& params) {
  RDBS_CHECK(params.num_hubs > 0 && params.num_hubs < params.num_vertices);
  RDBS_CHECK(params.hub_edge_fraction >= 0 && params.hub_edge_fraction <= 1);
  Xoshiro256 rng(params.seed);
  const VertexId n = params.num_vertices;

  EdgeList out;
  out.num_vertices = n;
  out.edges.reserve(params.num_edges);
  for (EdgeIndex i = 0; i < params.num_edges; ++i) {
    if (rng.uniform_real() < params.hub_edge_fraction) {
      const auto hub = static_cast<VertexId>(rng.next_below(params.num_hubs));
      auto satellite = static_cast<VertexId>(rng.next_below(n));
      if (satellite == hub) satellite = (satellite + 1) % n;
      out.add_edge(hub, satellite, 1.0);
    } else {
      const auto src = static_cast<VertexId>(rng.next_below(n));
      auto dst = static_cast<VertexId>(rng.next_below(n));
      if (dst == src) dst = (dst + 1) % n;
      out.add_edge(src, dst, 1.0);
    }
  }
  return out;
}

}  // namespace rdbs::graph
