// Surrogate datasets for the paper's Table 1 graphs.
//
// We cannot ship the SNAP / Network Repository originals, so each dataset
// name maps to a generator preset that reproduces the structural drivers of
// the original: degree-distribution family (uniform grid vs. power-law vs.
// hub-dominated), average degree, and diameter class. Sizes default to a
// CI-friendly scale and grow by powers of two via `size_scale` (size_scale=0
// is the default; each +1 doubles the vertex count).
//
// If the caller passes a directory containing real downloads (files named
// `<name>.txt` edge lists), load_dataset uses those instead — so the bench
// harness runs on the genuine graphs when available.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "graph/weights.hpp"

namespace rdbs::graph {

struct DatasetSpec {
  std::string name;        // short name used in the paper ("road-TX", ...)
  std::string full_name;   // original dataset ("roadNet-TX", ...)
  // Published statistics of the original (Table 1), for reporting.
  std::uint64_t paper_vertices = 0;
  std::uint64_t paper_edges = 0;
  double paper_avg_degree = 0.0;
  std::uint32_t paper_diameter = 0;
  // Structural family used for the surrogate.
  enum class Family { kGrid, kPowerLaw, kStarHeavy, kKronecker } family =
      Family::kPowerLaw;
};

// All ten real-world datasets from Table 1, in the paper's order.
const std::vector<DatasetSpec>& real_world_datasets();

// Looks up a spec by short name ("road-TX") or Kronecker name ("k-n21-16",
// parsed as SCALE=21 edgefactor=16 and scaled down by the same factor the
// real-world surrogates use).
std::optional<DatasetSpec> find_dataset(const std::string& name);

struct LoadOptions {
  int size_scale = 0;                 // each +1 doubles surrogate vertices
  WeightScheme weights = WeightScheme::kUniformInt1To1000;
  std::uint64_t seed = 42;
  std::string data_dir;               // optional dir with real edge lists
};

// Builds (or loads) the undirected weighted CSR for a dataset.
Csr load_dataset(const DatasetSpec& spec, const LoadOptions& options = {});

// Convenience: find + load by name; throws if the name is unknown.
Csr load_dataset_by_name(const std::string& name,
                         const LoadOptions& options = {});

}  // namespace rdbs::graph
