// Graph file I/O.
//
// Users who have the paper's original SNAP / Network Repository datasets can
// load them through these parsers; the bench harness falls back to the
// surrogate generators otherwise.
//
// Supported formats:
//  - whitespace edge list: "src dst [weight]" per line, '#'/'%' comments
//    (SNAP download format)
//  - DIMACS shortest-path format (.gr): "p sp V E" header, "a u v w" arcs,
//    1-based vertex ids
//  - MatrixMarket coordinate format (.mtx): general or symmetric,
//    pattern/real/integer fields
//  - a binary CSR cache for fast reloads
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "graph/coo.hpp"
#include "graph/csr.hpp"

namespace rdbs::graph {

EdgeList read_edge_list(const std::string& path);
void write_edge_list(const EdgeList& edges, const std::string& path);

EdgeList read_dimacs(const std::string& path);
void write_dimacs(const EdgeList& edges, const std::string& path);

EdgeList read_matrix_market(const std::string& path);

void write_binary_csr(const Csr& csr, const std::string& path);
Csr read_binary_csr(const std::string& path);

// Zero-copy view of an on-disk binary CSR (the write_binary_csr format),
// backed by a read-only memory mapping. Loading a SCALE-21 graph this way
// costs page-table setup instead of a full file read, and the page cache
// shares one physical copy across concurrent tool/bench processes — the
// capacity story behind examples/graph_convert.
//
// The view stays valid for the lifetime of the object. `to_csr()` copies
// into an owned Csr for APIs that need one; prefer the spans for
// stats/inspection tools.
class MappedCsr {
 public:
  MappedCsr() = default;
  explicit MappedCsr(const std::string& path);  // throws on parse/map errors
  ~MappedCsr();

  MappedCsr(MappedCsr&& other) noexcept { swap(other); }
  MappedCsr& operator=(MappedCsr&& other) noexcept {
    swap(other);
    return *this;
  }
  MappedCsr(const MappedCsr&) = delete;
  MappedCsr& operator=(const MappedCsr&) = delete;

  VertexId num_vertices() const {
    return row_offsets_.empty()
               ? 0
               : static_cast<VertexId>(row_offsets_.size() - 1);
  }
  EdgeIndex num_edges() const {
    return row_offsets_.empty() ? 0 : row_offsets_.back();
  }
  std::span<const EdgeIndex> row_offsets() const { return row_offsets_; }
  std::span<const VertexId> adjacency() const { return adjacency_; }
  std::span<const Weight> weights() const { return weights_; }
  std::size_t mapped_bytes() const { return map_length_; }

  Csr to_csr() const;

 private:
  void swap(MappedCsr& other) noexcept;

  void* map_base_ = nullptr;
  std::size_t map_length_ = 0;
  std::span<const EdgeIndex> row_offsets_;
  std::span<const VertexId> adjacency_;
  std::span<const Weight> weights_;
  // Version-1 files lack the alignment pad, so with an odd edge count the
  // weight array sits on a 4-byte boundary; it is copied out once instead
  // of aliased (doubles must not be read through a misaligned pointer).
  std::vector<Weight> realigned_weights_;
};

}  // namespace rdbs::graph
