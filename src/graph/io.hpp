// Graph file I/O.
//
// Users who have the paper's original SNAP / Network Repository datasets can
// load them through these parsers; the bench harness falls back to the
// surrogate generators otherwise.
//
// Supported formats:
//  - whitespace edge list: "src dst [weight]" per line, '#'/'%' comments
//    (SNAP download format)
//  - DIMACS shortest-path format (.gr): "p sp V E" header, "a u v w" arcs,
//    1-based vertex ids
//  - MatrixMarket coordinate format (.mtx): general or symmetric,
//    pattern/real/integer fields
//  - a binary CSR cache for fast reloads
#pragma once

#include <string>

#include "graph/coo.hpp"
#include "graph/csr.hpp"

namespace rdbs::graph {

EdgeList read_edge_list(const std::string& path);
void write_edge_list(const EdgeList& edges, const std::string& path);

EdgeList read_dimacs(const std::string& path);
void write_dimacs(const EdgeList& edges, const std::string& path);

EdgeList read_matrix_market(const std::string& path);

void write_binary_csr(const Csr& csr, const std::string& path);
Csr read_binary_csr(const std::string& path);

}  // namespace rdbs::graph
