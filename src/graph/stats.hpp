// Structural statistics used to characterize datasets (paper Table 1) and to
// sanity-check the surrogate generators against the originals' published
// vertex/edge counts, average degree and diameter.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace rdbs::graph {

struct DegreeStats {
  EdgeIndex min_degree = 0;
  EdgeIndex max_degree = 0;
  double average_degree = 0.0;
  // Fraction of edges incident to the top 1% highest-degree vertices; a
  // cheap proxy for power-law skew (close to 0 for uniform graphs, large
  // for hub-dominated graphs).
  double top1pct_edge_share = 0.0;
};

DegreeStats compute_degree_stats(const Csr& csr);

// Histogram of log2(degree) buckets: result[k] counts vertices with degree
// in [2^k, 2^(k+1)); result[0] also includes degree-0 and degree-1 vertices.
std::vector<std::uint64_t> degree_log_histogram(const Csr& csr);

// Approximate diameter: runs BFS from `samples` pseudo-random seeds plus a
// double-sweep (BFS from the farthest vertex found) and returns the largest
// eccentricity seen. Lower bound on the true diameter; matches how such
// numbers are usually reported for large graphs.
std::uint32_t approximate_diameter(const Csr& csr, int samples,
                                   std::uint64_t seed);

// Number of vertices reachable from src (used to scope correctness checks
// to the source's component).
std::uint64_t reachable_count(const Csr& csr, VertexId src);

// Size of the largest connected component and a representative vertex in it
// (treats edges as undirected, which holds for all library graphs).
struct ComponentInfo {
  std::uint64_t largest_size = 0;
  VertexId representative = 0;
  std::uint64_t component_count = 0;
};

ComponentInfo connected_components(const Csr& csr);

}  // namespace rdbs::graph
