// Builds a CSR graph from an edge list, with the normalizations the paper's
// preprocessing assumes: optional symmetrization, self-loop removal and
// parallel-edge deduplication (keeping the minimum weight, which preserves
// shortest-path distances).
#pragma once

#include "graph/coo.hpp"
#include "graph/csr.hpp"

namespace rdbs::graph {

struct BuildOptions {
  bool symmetrize = false;        // make undirected (add reverse edges)
  bool remove_self_loops = true;  // a self-loop never shortens a path
  bool dedup_parallel = true;     // keep min-weight copy of (u,v) duplicates
};

// Counting-sort by source vertex, then per-vertex dedup. O(V + E log deg).
Csr build_csr(const EdgeList& edges, const BuildOptions& options = {});

// Inverse conversion, mainly for tests and I/O round-trips.
EdgeList csr_to_edge_list(const Csr& csr);

}  // namespace rdbs::graph
