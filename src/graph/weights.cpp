#include "graph/weights.hpp"

#include <algorithm>

#include "common/rng.hpp"

namespace rdbs::graph {

Weight edge_weight_for(VertexId u, VertexId v, WeightScheme scheme,
                       std::uint64_t seed) {
  // Hash the unordered pair so both directions of an undirected edge agree.
  const VertexId lo = std::min(u, v);
  const VertexId hi = std::max(u, v);
  const std::uint64_t key =
      (static_cast<std::uint64_t>(lo) << 32) | static_cast<std::uint64_t>(hi);
  const std::uint64_t h = mix64(key ^ mix64(seed));
  switch (scheme) {
    case WeightScheme::kUniformInt1To1000:
      return static_cast<Weight>(1 + (h % 1000));
    case WeightScheme::kUniformReal01:
      return static_cast<Weight>(h >> 11) * 0x1.0p-53;
    case WeightScheme::kUnit:
      return 1.0;
  }
  return 1.0;
}

void assign_weights(EdgeList& edges, WeightScheme scheme, std::uint64_t seed) {
  for (auto& e : edges.edges) {
    e.weight = edge_weight_for(e.src, e.dst, scheme, seed);
  }
}

void assign_weights(Csr& csr, WeightScheme scheme, std::uint64_t seed) {
  auto weights = csr.mutable_weights();
  EdgeIndex e = 0;
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    for (const VertexId dst : csr.neighbors(v)) {
      weights[e++] = edge_weight_for(v, dst, scheme, seed);
    }
  }
}

}  // namespace rdbs::graph
