// Coordinate-format edge list: the interchange format between generators,
// parsers and the CSR builder.
#pragma once

#include <vector>

#include "graph/types.hpp"

namespace rdbs::graph {

struct EdgeList {
  VertexId num_vertices = 0;
  std::vector<WeightedEdge> edges;

  void add_edge(VertexId src, VertexId dst, Weight weight) {
    edges.push_back({src, dst, weight});
  }

  std::size_t num_edges() const { return edges.size(); }

  // Appends the reverse of every current edge (same weight), turning a
  // directed list into an undirected one. Self-loops are not duplicated.
  void symmetrize();
};

}  // namespace rdbs::graph
