// Compressed Sparse Row graph container.
//
// Layout follows the paper's Fig. 1(c)/Fig. 4(c): a row list (offsets), an
// adjacency list (destination vertices) and a value list (weights). After
// property-driven reordering (reorder/pro.hpp) a parallel *heavy-offset*
// array is attached: heavy_offsets()[v] is the index of v's first heavy edge
// (weight >= Δ) inside its weight-sorted adjacency range, enabling O(1)
// light/heavy split in Δ-stepping phases 1 and 2.
#pragma once

#include <span>
#include <vector>

#include "common/macros.hpp"
#include "graph/types.hpp"

namespace rdbs::graph {

class Csr {
 public:
  Csr() = default;
  Csr(std::vector<EdgeIndex> row_offsets, std::vector<VertexId> adjacency,
      std::vector<Weight> weights);

  VertexId num_vertices() const {
    return row_offsets_.empty()
               ? 0
               : static_cast<VertexId>(row_offsets_.size() - 1);
  }
  EdgeIndex num_edges() const {
    return row_offsets_.empty() ? 0 : row_offsets_.back();
  }

  EdgeIndex row_begin(VertexId v) const { return row_offsets_[v]; }
  EdgeIndex row_end(VertexId v) const { return row_offsets_[v + 1]; }
  EdgeIndex degree(VertexId v) const { return row_end(v) - row_begin(v); }

  std::span<const VertexId> neighbors(VertexId v) const {
    return {adjacency_.data() + row_begin(v),
            static_cast<std::size_t>(degree(v))};
  }
  std::span<const Weight> edge_weights(VertexId v) const {
    return {weights_.data() + row_begin(v),
            static_cast<std::size_t>(degree(v))};
  }

  std::span<const EdgeIndex> row_offsets() const { return row_offsets_; }
  // Mutable weight access for re-weighting an already-built graph
  // (graph::assign_weights). Invalidate heavy offsets after use.
  std::span<Weight> mutable_weights() { return weights_; }
  std::span<const VertexId> adjacency() const { return adjacency_; }
  std::span<const Weight> weights() const { return weights_; }

  VertexId neighbor(EdgeIndex e) const { return adjacency_[e]; }
  Weight weight(EdgeIndex e) const { return weights_[e]; }

  // --- heavy-edge offsets (set by property-driven reordering) ------------
  bool has_heavy_offsets() const { return !heavy_offsets_.empty(); }
  // Index of v's first heavy edge; edges [row_begin, heavy) are light.
  EdgeIndex heavy_begin(VertexId v) const {
    RDBS_DCHECK(has_heavy_offsets());
    return heavy_offsets_[v];
  }
  std::span<const EdgeIndex> heavy_offsets() const { return heavy_offsets_; }
  void set_heavy_offsets(std::vector<EdgeIndex> offsets);
  // The Δ value the heavy offsets were computed for (paper: the offsets can
  // be recomputed in phase 1 when Δ changes; see recompute_heavy_offsets).
  Weight heavy_delta() const { return heavy_delta_; }
  void set_heavy_delta(Weight delta) { heavy_delta_ = delta; }

  // Recomputes heavy offsets for a new Δ. Requires weight-sorted adjacency
  // (binary search per vertex); O(V log maxdeg).
  void recompute_heavy_offsets(Weight delta);

  // Number of light edges (weight < heavy_delta) of v in O(1).
  EdgeIndex light_degree(VertexId v) const {
    return heavy_begin(v) - row_begin(v);
  }
  EdgeIndex heavy_degree(VertexId v) const {
    return row_end(v) - heavy_begin(v);
  }

  // Structural sanity: offsets monotone, adjacency in range. Aborts on
  // violation (used by tests and after deserialization).
  void validate() const;

  // True if every vertex's weights are non-decreasing (post-PRO property).
  bool weights_sorted_per_vertex() const;

 private:
  std::vector<EdgeIndex> row_offsets_;   // size V+1
  std::vector<VertexId> adjacency_;      // size E
  std::vector<Weight> weights_;          // size E
  std::vector<EdgeIndex> heavy_offsets_; // size V when present
  Weight heavy_delta_ = 0;
};

}  // namespace rdbs::graph
