#include "graph/csr.hpp"

#include <algorithm>

namespace rdbs::graph {

Csr::Csr(std::vector<EdgeIndex> row_offsets, std::vector<VertexId> adjacency,
         std::vector<Weight> weights)
    : row_offsets_(std::move(row_offsets)),
      adjacency_(std::move(adjacency)),
      weights_(std::move(weights)) {
  validate();
}

void Csr::set_heavy_offsets(std::vector<EdgeIndex> offsets) {
  RDBS_CHECK(offsets.size() == num_vertices());
  heavy_offsets_ = std::move(offsets);
}

void Csr::recompute_heavy_offsets(Weight delta) {
  RDBS_CHECK_MSG(weights_sorted_per_vertex(),
                 "heavy offsets require weight-sorted adjacency");
  heavy_offsets_.resize(num_vertices());
  for (VertexId v = 0; v < num_vertices(); ++v) {
    const Weight* begin = weights_.data() + row_begin(v);
    const Weight* end = weights_.data() + row_end(v);
    const Weight* split = std::lower_bound(begin, end, delta);
    heavy_offsets_[v] = row_begin(v) + static_cast<EdgeIndex>(split - begin);
  }
  heavy_delta_ = delta;
}

void Csr::validate() const {
  RDBS_CHECK(!row_offsets_.empty());
  RDBS_CHECK(row_offsets_.front() == 0);
  RDBS_CHECK(row_offsets_.back() == adjacency_.size());
  RDBS_CHECK(adjacency_.size() == weights_.size());
  for (std::size_t i = 1; i < row_offsets_.size(); ++i) {
    RDBS_CHECK(row_offsets_[i - 1] <= row_offsets_[i]);
  }
  const VertexId n = num_vertices();
  for (const VertexId dst : adjacency_) RDBS_CHECK(dst < n);
  if (!heavy_offsets_.empty()) {
    RDBS_CHECK(heavy_offsets_.size() == n);
    for (VertexId v = 0; v < n; ++v) {
      RDBS_CHECK(heavy_offsets_[v] >= row_begin(v));
      RDBS_CHECK(heavy_offsets_[v] <= row_end(v));
    }
  }
}

bool Csr::weights_sorted_per_vertex() const {
  for (VertexId v = 0; v < num_vertices(); ++v) {
    for (EdgeIndex e = row_begin(v) + 1; e < row_end(v); ++e) {
      if (weights_[e] < weights_[e - 1]) return false;
    }
  }
  return true;
}

}  // namespace rdbs::graph
