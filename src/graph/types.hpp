// Fundamental graph value types shared across the library.
#pragma once

#include <cstdint>
#include <limits>

namespace rdbs::graph {

// Vertex identifiers are 32-bit: the paper's largest graph (soc-twitter-2010,
// 21M vertices) and anything this library targets fits comfortably.
using VertexId = std::uint32_t;

// Edge *indices* (offsets into the adjacency arrays) are 64-bit so CSR row
// offsets never overflow even for multi-billion-edge graphs.
using EdgeIndex = std::uint64_t;

// Edge weights and tentative distances. Double gives exact arithmetic for
// the paper's integer weights (1..1000) and well-defined fold-left sums for
// the Graph500-style real weights in [0,1).
using Weight = double;
using Distance = double;

inline constexpr Distance kInfiniteDistance =
    std::numeric_limits<Distance>::infinity();

inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();

// A directed, weighted edge as produced by generators and parsers.
struct WeightedEdge {
  VertexId src = 0;
  VertexId dst = 0;
  Weight weight = 0;

  friend bool operator==(const WeightedEdge&, const WeightedEdge&) = default;
};

}  // namespace rdbs::graph
