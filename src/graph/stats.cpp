#include "graph/stats.hpp"

#include <algorithm>
#include <queue>

#include "common/rng.hpp"

namespace rdbs::graph {

DegreeStats compute_degree_stats(const Csr& csr) {
  DegreeStats stats;
  const VertexId n = csr.num_vertices();
  if (n == 0) return stats;

  std::vector<EdgeIndex> degrees(n);
  stats.min_degree = csr.degree(0);
  for (VertexId v = 0; v < n; ++v) {
    degrees[v] = csr.degree(v);
    stats.min_degree = std::min(stats.min_degree, degrees[v]);
    stats.max_degree = std::max(stats.max_degree, degrees[v]);
  }
  stats.average_degree =
      static_cast<double>(csr.num_edges()) / static_cast<double>(n);

  std::sort(degrees.begin(), degrees.end(), std::greater<>());
  const std::size_t top = std::max<std::size_t>(1, n / 100);
  EdgeIndex top_edges = 0;
  for (std::size_t i = 0; i < top; ++i) top_edges += degrees[i];
  stats.top1pct_edge_share = csr.num_edges() == 0
                                 ? 0.0
                                 : static_cast<double>(top_edges) /
                                       static_cast<double>(csr.num_edges());
  return stats;
}

std::vector<std::uint64_t> degree_log_histogram(const Csr& csr) {
  std::vector<std::uint64_t> histogram;
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    const EdgeIndex d = csr.degree(v);
    std::size_t bucket = 0;
    EdgeIndex threshold = 2;
    while (threshold <= d) {
      ++bucket;
      threshold <<= 1;
    }
    if (bucket >= histogram.size()) histogram.resize(bucket + 1, 0);
    ++histogram[bucket];
  }
  return histogram;
}

namespace {

// BFS returning (max depth reached, farthest vertex).
std::pair<std::uint32_t, VertexId> bfs_eccentricity(const Csr& csr,
                                                    VertexId src,
                                                    std::vector<std::uint32_t>&
                                                        depth_scratch) {
  constexpr std::uint32_t kUnvisited = ~0u;
  std::fill(depth_scratch.begin(), depth_scratch.end(), kUnvisited);
  std::queue<VertexId> frontier;
  depth_scratch[src] = 0;
  frontier.push(src);
  std::uint32_t max_depth = 0;
  VertexId farthest = src;
  while (!frontier.empty()) {
    const VertexId u = frontier.front();
    frontier.pop();
    for (const VertexId v : csr.neighbors(u)) {
      if (depth_scratch[v] == kUnvisited) {
        depth_scratch[v] = depth_scratch[u] + 1;
        if (depth_scratch[v] > max_depth) {
          max_depth = depth_scratch[v];
          farthest = v;
        }
        frontier.push(v);
      }
    }
  }
  return {max_depth, farthest};
}

}  // namespace

std::uint32_t approximate_diameter(const Csr& csr, int samples,
                                   std::uint64_t seed) {
  const VertexId n = csr.num_vertices();
  if (n == 0) return 0;
  Xoshiro256 rng(seed);
  std::vector<std::uint32_t> depth(n);
  std::uint32_t best = 0;
  for (int i = 0; i < samples; ++i) {
    const auto src = static_cast<VertexId>(rng.next_below(n));
    auto [depth1, far1] = bfs_eccentricity(csr, src, depth);
    best = std::max(best, depth1);
    // Double sweep: BFS from the farthest vertex usually tightens the bound.
    auto [depth2, far2] = bfs_eccentricity(csr, far1, depth);
    (void)far2;
    best = std::max(best, depth2);
  }
  return best;
}

std::uint64_t reachable_count(const Csr& csr, VertexId src) {
  std::vector<bool> visited(csr.num_vertices(), false);
  std::queue<VertexId> frontier;
  visited[src] = true;
  frontier.push(src);
  std::uint64_t count = 1;
  while (!frontier.empty()) {
    const VertexId u = frontier.front();
    frontier.pop();
    for (const VertexId v : csr.neighbors(u)) {
      if (!visited[v]) {
        visited[v] = true;
        ++count;
        frontier.push(v);
      }
    }
  }
  return count;
}

ComponentInfo connected_components(const Csr& csr) {
  ComponentInfo info;
  const VertexId n = csr.num_vertices();
  std::vector<bool> visited(n, false);
  std::queue<VertexId> frontier;
  for (VertexId root = 0; root < n; ++root) {
    if (visited[root]) continue;
    ++info.component_count;
    std::uint64_t size = 1;
    visited[root] = true;
    frontier.push(root);
    while (!frontier.empty()) {
      const VertexId u = frontier.front();
      frontier.pop();
      for (const VertexId v : csr.neighbors(u)) {
        if (!visited[v]) {
          visited[v] = true;
          ++size;
          frontier.push(v);
        }
      }
    }
    if (size > info.largest_size) {
      info.largest_size = size;
      info.representative = root;
    }
  }
  return info;
}

}  // namespace rdbs::graph
