// Synthetic graph generators.
//
// KroneckerGenerator reproduces the Graph500 reference generator the paper
// uses for its synthetic inputs (R-MAT style recursive bisection with
// A=0.57 B=0.19 C=0.19 D=0.05, SCALE / edgefactor parameters, vertex-label
// permutation). The remaining generators provide the structural families
// used as surrogates for the paper's real-world datasets (see
// surrogates.hpp): high-diameter road grids, power-law social/web graphs,
// star-heavy communication graphs, and uniform random graphs.
//
// All generators emit directed edge lists; callers symmetrize via
// BuildOptions when an undirected graph is needed (the paper treats all
// inputs as undirected).
#pragma once

#include <cstdint>

#include "graph/coo.hpp"

namespace rdbs::graph {

// --- Graph500 Kronecker / R-MAT ------------------------------------------
struct KroneckerParams {
  int scale = 16;           // num_vertices = 2^scale
  int edgefactor = 16;      // num_edges = edgefactor * 2^scale
  double a = 0.57, b = 0.19, c = 0.19;  // d = 1 - a - b - c
  bool permute_labels = true;  // Graph500 shuffles vertex labels
  std::uint64_t seed = 1;
};

EdgeList generate_kronecker(const KroneckerParams& params);

// --- 2D grid road network -------------------------------------------------
// width x height lattice; each lattice edge is kept with probability
// keep_probability (thinning models missing road segments and drives the
// average degree down to road-network levels while keeping diameter high).
struct GridParams {
  VertexId width = 256;
  VertexId height = 256;
  double keep_probability = 1.0;
  std::uint64_t seed = 1;
};

EdgeList generate_grid(const GridParams& params);

// --- Chung-Lu power-law ----------------------------------------------------
// Expected-degree model: vertex v gets target weight ~ (v+1)^(-1/(gamma-1)),
// normalized so the expected edge count matches num_edges. Produces the
// heavy-tailed degree distributions of social/web graphs with a tunable
// skew exponent gamma (smaller gamma -> heavier tail).
struct ChungLuParams {
  VertexId num_vertices = 1 << 16;
  EdgeIndex num_edges = 1 << 20;
  double gamma = 2.3;
  std::uint64_t seed = 1;
};

EdgeList generate_chung_lu(const ChungLuParams& params);

// --- Watts-Strogatz small world ---------------------------------------------
struct SmallWorldParams {
  VertexId num_vertices = 1 << 16;
  int ring_degree = 8;        // each vertex connects to ring_degree nearest
  double rewire_probability = 0.1;
  std::uint64_t seed = 1;
};

EdgeList generate_small_world(const SmallWorldParams& params);

// --- Erdős–Rényi G(n, m) ----------------------------------------------------
struct UniformRandomParams {
  VertexId num_vertices = 1 << 16;
  EdgeIndex num_edges = 1 << 20;
  std::uint64_t seed = 1;
};

EdgeList generate_uniform_random(const UniformRandomParams& params);

// --- Star-heavy graph --------------------------------------------------------
// A small set of hubs each connected to many satellites, plus a sprinkling
// of random edges; models wiki-Talk-like graphs (tiny average degree, a few
// enormous-degree vertices, low diameter).
struct StarHeavyParams {
  VertexId num_vertices = 1 << 16;
  VertexId num_hubs = 32;
  double hub_edge_fraction = 0.7;  // fraction of edges incident to hubs
  EdgeIndex num_edges = 1 << 18;
  std::uint64_t seed = 1;
};

EdgeList generate_star_heavy(const StarHeavyParams& params);

}  // namespace rdbs::graph
