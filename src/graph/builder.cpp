#include "graph/builder.hpp"

#include <algorithm>

#include "common/macros.hpp"

namespace rdbs::graph {

void EdgeList::symmetrize() {
  const std::size_t original = edges.size();
  edges.reserve(original * 2);
  for (std::size_t i = 0; i < original; ++i) {
    const WeightedEdge& e = edges[i];
    if (e.src != e.dst) edges.push_back({e.dst, e.src, e.weight});
  }
}

Csr build_csr(const EdgeList& input, const BuildOptions& options) {
  const VertexId n = input.num_vertices;
  for (const auto& e : input.edges) {
    RDBS_CHECK_MSG(e.src < n && e.dst < n, "edge endpoint out of range");
    RDBS_CHECK_MSG(e.weight >= 0, "negative weights are not supported");
  }

  // Working copy of the edges we will keep.
  std::vector<WeightedEdge> edges;
  edges.reserve(input.edges.size() * (options.symmetrize ? 2 : 1));
  for (const auto& e : input.edges) {
    if (options.remove_self_loops && e.src == e.dst) continue;
    edges.push_back(e);
    if (options.symmetrize && e.src != e.dst) {
      edges.push_back({e.dst, e.src, e.weight});
    }
  }

  // Counting sort by source: one pass for degrees, scan, one pass to place.
  std::vector<EdgeIndex> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& e : edges) ++offsets[e.src + 1];
  for (std::size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];

  std::vector<VertexId> adjacency(edges.size());
  std::vector<Weight> weights(edges.size());
  {
    std::vector<EdgeIndex> cursor(offsets.begin(), offsets.end() - 1);
    for (const auto& e : edges) {
      const EdgeIndex slot = cursor[e.src]++;
      adjacency[slot] = e.dst;
      weights[slot] = e.weight;
    }
  }

  if (!options.dedup_parallel) {
    return Csr(std::move(offsets), std::move(adjacency), std::move(weights));
  }

  // Per-vertex dedup: sort each row by (dst, weight) and keep the first
  // (minimum-weight) copy of every destination. Compact in place.
  std::vector<EdgeIndex> new_offsets(static_cast<std::size_t>(n) + 1, 0);
  std::vector<std::pair<VertexId, Weight>> row;
  EdgeIndex write = 0;
  for (VertexId v = 0; v < n; ++v) {
    const EdgeIndex begin = offsets[v];
    const EdgeIndex end = offsets[v + 1];
    row.clear();
    for (EdgeIndex e = begin; e < end; ++e) row.emplace_back(adjacency[e], weights[e]);
    std::sort(row.begin(), row.end());
    new_offsets[v] = write;
    VertexId last_dst = kInvalidVertex;
    for (const auto& [dst, w] : row) {
      if (dst == last_dst) continue;  // duplicates sorted after the min copy
      adjacency[write] = dst;
      weights[write] = w;
      ++write;
      last_dst = dst;
    }
  }
  new_offsets[n] = write;
  adjacency.resize(write);
  weights.resize(write);
  return Csr(std::move(new_offsets), std::move(adjacency), std::move(weights));
}

EdgeList csr_to_edge_list(const Csr& csr) {
  EdgeList out;
  out.num_vertices = csr.num_vertices();
  out.edges.reserve(csr.num_edges());
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    for (EdgeIndex e = csr.row_begin(v); e < csr.row_end(v); ++e) {
      out.edges.push_back({v, csr.neighbor(e), csr.weight(e)});
    }
  }
  return out;
}

}  // namespace rdbs::graph
