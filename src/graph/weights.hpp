// Edge-weight assignment.
//
// The paper's real-world graphs ship without weights; the authors "use the
// random function that follows uniform distribution to generate different
// edges' weight values belonging to 1 to 1000". The Graph500 experiments
// (Figs. 2-3) instead use real weights in [0, 1) with Δ = 0.1. Both schemes
// are provided, plus unit weights for BFS-like checks.
//
// Weights are assigned deterministically per undirected edge: both copies
// (u,v) and (v,u) of a symmetrized edge receive the same value, derived by
// hashing the unordered endpoint pair with the seed.
#pragma once

#include <cstdint>

#include "graph/coo.hpp"
#include "graph/csr.hpp"

namespace rdbs::graph {

enum class WeightScheme {
  kUniformInt1To1000,  // paper's real-world setting
  kUniformReal01,      // Graph500 setting (Δ = 0.1)
  kUnit,               // all weights 1
};

// Assigns weights in place to an edge list.
void assign_weights(EdgeList& edges, WeightScheme scheme, std::uint64_t seed);

// Rebuilds the weight array of a CSR in place (same symmetric-consistency
// guarantee); used when re-weighting an already-built graph.
void assign_weights(Csr& csr, WeightScheme scheme, std::uint64_t seed);

// The deterministic per-edge weight function both overloads use.
Weight edge_weight_for(VertexId u, VertexId v, WeightScheme scheme,
                       std::uint64_t seed);

}  // namespace rdbs::graph
