#include "graph/surrogates.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <stdexcept>

#include "common/log.hpp"
#include "common/macros.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace rdbs::graph {

namespace {

using Family = DatasetSpec::Family;

// Default surrogate vertex budget at size_scale = 0. Chosen so the full
// ten-dataset sweep finishes in seconds on one CPU core while keeping each
// graph large enough that bucket occupancy and load-imbalance phenomena
// are visible (thousands of active vertices per bucket).
constexpr VertexId kBaseVertices = 1 << 14;  // 16,384

std::vector<DatasetSpec> make_registry() {
  // Published statistics from Table 1 of the paper.
  return {
      {"road-TX", "roadNet-TX", 1379917, 1921660, 1.39, 1054, Family::kGrid},
      {"Amazon", "amazon0601", 403394, 3387388, 8.39, 21, Family::kPowerLaw},
      {"web-GL", "web-Google", 875713, 5105039, 5.82, 21, Family::kPowerLaw},
      {"com-LJ", "com-LiveJournal", 3997962, 34681189, 8.67, 17,
       Family::kPowerLaw},
      {"soc-PK", "soc-Pokec", 1632803, 30622564, 18.75, 11,
       Family::kPowerLaw},
      {"com-OK", "com-Orkut", 3072441, 117185083, 38.14, 9,
       Family::kPowerLaw},
      {"as-Skt", "as-Skitter", 1696415, 11095298, 6.54, 25,
       Family::kPowerLaw},
      {"soc-LJ", "soc-LiveJournal1", 4847571, 68993773, 14.23, 16,
       Family::kPowerLaw},
      {"wiki-TK", "wiki-Talk", 2394385, 5021410, 2.10, 9,
       Family::kStarHeavy},
      {"soc-TW", "soc-twitter-2010", 21297772, 265025545, 12.44, 18,
       Family::kPowerLaw},
  };
}

// Relative size ordering of the originals is preserved: datasets whose
// originals are bigger get a larger surrogate.
VertexId surrogate_vertices(const DatasetSpec& spec, int size_scale) {
  double rel = static_cast<double>(spec.paper_vertices) / 1379917.0;  // road-TX
  rel = std::clamp(rel, 0.25, 8.0);
  double v = static_cast<double>(kBaseVertices) * rel *
             std::pow(2.0, size_scale);
  return static_cast<VertexId>(std::max(1024.0, v));
}

// Power-law skew exponent per dataset: heavier tails for the graphs the
// paper identifies as most irregular (synthetic-like social graphs), milder
// for co-purchase/web graphs.
double gamma_for(const std::string& name) {
  if (name == "Amazon") return 2.9;   // near-uniform co-purchase graph
  if (name == "web-GL") return 2.4;
  if (name == "as-Skt") return 2.2;   // internet topology, strong hubs
  if (name == "soc-TW") return 2.1;   // heaviest tail
  return 2.3;                          // LiveJournal/Pokec/Orkut-like
}

EdgeList generate_surrogate(const DatasetSpec& spec, VertexId n,
                            std::uint64_t seed) {
  switch (spec.family) {
    case Family::kGrid: {
      // Square-ish grid thinned so edges/vertices matches the original's
      // average degree (grid has ~2 candidate edges per vertex).
      const auto side = static_cast<VertexId>(std::sqrt(double(n)));
      GridParams params;
      params.width = side;
      params.height = side;
      params.keep_probability = std::min(1.0, spec.paper_avg_degree / 2.0);
      params.seed = seed;
      return generate_grid(params);
    }
    case Family::kStarHeavy: {
      StarHeavyParams params;
      params.num_vertices = n;
      params.num_hubs = std::max<VertexId>(8, n / 4096);
      params.hub_edge_fraction = 0.7;
      params.num_edges =
          static_cast<EdgeIndex>(spec.paper_avg_degree * double(n));
      params.seed = seed;
      return generate_star_heavy(params);
    }
    case Family::kKronecker: {
      KroneckerParams params;
      params.scale = static_cast<int>(std::lround(std::log2(double(n))));
      params.edgefactor =
          std::max(1, static_cast<int>(std::lround(spec.paper_avg_degree)));
      params.seed = seed;
      return generate_kronecker(params);
    }
    case Family::kPowerLaw:
    default: {
      ChungLuParams params;
      params.num_vertices = n;
      params.num_edges =
          static_cast<EdgeIndex>(spec.paper_avg_degree * double(n));
      params.gamma = gamma_for(spec.name);
      params.seed = seed;
      return generate_chung_lu(params);
    }
  }
}

std::optional<Csr> try_load_real(const DatasetSpec& spec,
                                 const LoadOptions& options) {
  if (options.data_dir.empty()) return std::nullopt;
  namespace fs = std::filesystem;
  for (const auto& stem : {spec.name, spec.full_name}) {
    const fs::path txt = fs::path(options.data_dir) / (stem + ".txt");
    if (fs::exists(txt)) {
      RDBS_LOG_INFO("loading real dataset %s", txt.string().c_str());
      EdgeList edges = read_edge_list(txt.string());
      assign_weights(edges, options.weights, options.seed);
      BuildOptions build;
      build.symmetrize = true;
      return build_csr(edges, build);
    }
  }
  return std::nullopt;
}

}  // namespace

const std::vector<DatasetSpec>& real_world_datasets() {
  static const std::vector<DatasetSpec> registry = make_registry();
  return registry;
}

std::optional<DatasetSpec> find_dataset(const std::string& name) {
  for (const auto& spec : real_world_datasets()) {
    if (spec.name == name || spec.full_name == name) return spec;
  }
  // Kronecker names: k-n<scale>-<edgefactor>, e.g. "k-n21-16".
  if (name.rfind("k-n", 0) == 0) {
    const auto dash = name.find('-', 3);
    if (dash != std::string::npos) {
      DatasetSpec spec;
      spec.name = name;
      spec.full_name = "Graph500 Kronecker";
      spec.family = Family::kKronecker;
      const int scale = std::stoi(name.substr(3, dash - 3));
      const int edgefactor = std::stoi(name.substr(dash + 1));
      spec.paper_vertices = std::uint64_t(1) << scale;
      spec.paper_edges = spec.paper_vertices *
                         static_cast<std::uint64_t>(edgefactor);
      spec.paper_avg_degree = edgefactor;
      return spec;
    }
  }
  return std::nullopt;
}

Csr load_dataset(const DatasetSpec& spec, const LoadOptions& options) {
  if (auto real = try_load_real(spec, options)) return std::move(*real);

  const VertexId n = surrogate_vertices(spec, options.size_scale);
  EdgeList edges = generate_surrogate(spec, n, options.seed);
  assign_weights(edges, options.weights, options.seed);
  BuildOptions build;
  build.symmetrize = true;
  return build_csr(edges, build);
}

Csr load_dataset_by_name(const std::string& name,
                         const LoadOptions& options) {
  const auto spec = find_dataset(name);
  if (!spec) throw std::runtime_error("unknown dataset: " + name);
  return load_dataset(*spec, options);
}

}  // namespace rdbs::graph
