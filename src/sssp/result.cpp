#include "sssp/result.hpp"

namespace rdbs::sssp {

void finalize_valid_updates(SsspResult& result, VertexId source) {
  std::uint64_t reached = 0;
  for (VertexId v = 0; v < result.distances.size(); ++v) {
    if (v != source && result.distances[v] != kInfiniteDistance) ++reached;
  }
  result.work.valid_updates = reached;
}

}  // namespace rdbs::sssp
