#include "sssp/dijkstra.hpp"

#include <queue>
#include <utility>

#include "common/macros.hpp"

namespace rdbs::sssp {

SsspResult dijkstra(const Csr& csr, VertexId source) {
  RDBS_CHECK(source < csr.num_vertices());
  SsspResult result;
  result.distances.assign(csr.num_vertices(), kInfiniteDistance);
  result.distances[source] = 0;

  using Entry = std::pair<Distance, VertexId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  heap.push({0, source});

  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > result.distances[u]) continue;  // stale entry
    ++result.work.iterations;
    const auto neighbors = csr.neighbors(u);
    const auto weights = csr.edge_weights(u);
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      const VertexId v = neighbors[i];
      const Distance through = d + weights[i];
      ++result.work.relaxations;
      if (through < result.distances[v]) {
        result.distances[v] = through;
        ++result.work.total_updates;
        heap.push({through, v});
      }
    }
  }
  finalize_valid_updates(result, source);
  return result;
}

}  // namespace rdbs::sssp
