#include "sssp/validate.hpp"

#include <sstream>

namespace rdbs::sssp {

std::optional<std::string> validate_distances(
    const Csr& csr, VertexId source, const std::vector<Distance>& dist) {
  const VertexId n = csr.num_vertices();
  if (dist.size() != n) return "distance array size mismatch";
  if (source >= n) return "source out of range";
  if (dist[source] != 0) return "dist[source] != 0";

  auto describe = [](const char* what, VertexId u, VertexId v) {
    std::ostringstream out;
    out << what << " at edge (" << u << " -> " << v << ")";
    return out.str();
  };

  // Feasibility + achievability in one sweep over out-edges. Achievability
  // is checked from the destination side: collect, for every v, whether some
  // in-edge attains dist[v]. Because the graph is symmetric, out-edges of u
  // double as in-edges of its neighbors.
  std::vector<char> attained(n, 0);
  attained[source] = 1;
  for (VertexId u = 0; u < n; ++u) {
    if (dist[u] == kInfiniteDistance) continue;
    const auto neighbors = csr.neighbors(u);
    const auto weights = csr.edge_weights(u);
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      const VertexId v = neighbors[i];
      const Distance through = dist[u] + weights[i];
      if (through < dist[v]) return describe("relaxable edge", u, v);
      if (through == dist[v]) attained[v] = 1;
    }
  }
  for (VertexId v = 0; v < n; ++v) {
    if (dist[v] != kInfiniteDistance && !attained[v]) {
      return "unattained finite distance at vertex " + std::to_string(v);
    }
  }
  return std::nullopt;
}

}  // namespace rdbs::sssp
