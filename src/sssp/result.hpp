// Common result and statistics types for every SSSP implementation in the
// library (CPU reference algorithms and the gpusim-based ones alike).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace rdbs::sssp {

using graph::Csr;
using graph::Distance;
using graph::EdgeIndex;
using graph::VertexId;
using graph::Weight;
using graph::kInfiniteDistance;

// Work counters in the paper's vocabulary (§3, Fig. 3, Fig. 9):
//  - a *check* is one relaxation attempt (Algorithm 1 executed once);
//  - an *update* is a check that decreased the tentative distance;
//  - an update is *valid* if it wrote the vertex's final shortest distance.
// Each reached vertex has exactly one valid update, so
// valid_updates == number of reached non-source vertices, and the paper's
// work-efficiency indicator is total_updates / valid_updates.
struct WorkStats {
  std::uint64_t relaxations = 0;    // checks
  std::uint64_t total_updates = 0;  // successful distance decreases
  std::uint64_t valid_updates = 0;  // one per reached vertex
  std::uint64_t iterations = 0;     // synchronous rounds / bucket steps

  double redundancy_ratio() const {
    return valid_updates == 0
               ? 0.0
               : static_cast<double>(total_updates) /
                     static_cast<double>(valid_updates);
  }
};

struct SsspResult {
  std::vector<Distance> distances;
  WorkStats work;

  std::uint64_t reached_count() const {
    std::uint64_t count = 0;
    for (const Distance d : distances) count += (d != kInfiniteDistance);
    return count;
  }
};

// Fills in work.valid_updates from the final distance array (reached
// vertices excluding the source).
void finalize_valid_updates(SsspResult& result, VertexId source);

}  // namespace rdbs::sssp
