// Shortest-path tree reconstruction.
//
// The engines in this library compute distances only (like the paper's
// kernels); a predecessor tree can always be recovered afterwards in one
// pass over the edges, because a distance array that passes
// validate_distances has, for every reached vertex, at least one in-edge
// that attains its distance. build_parent_tree picks the attaining
// predecessor deterministically (smallest vertex id) and extract_path walks
// it — O(E) once, then O(path length) per query.
#pragma once

#include <optional>
#include <vector>

#include "sssp/result.hpp"

namespace rdbs::sssp {

// parents[v] = predecessor of v on a shortest path from the source
// (kInvalidVertex for the source itself and for unreached vertices).
// Requires `dist` to be a valid shortest-distance array for `csr`.
std::vector<VertexId> build_parent_tree(const Csr& csr, VertexId source,
                                        const std::vector<Distance>& dist);

// The vertex sequence source -> ... -> target, or nullopt if unreached.
std::optional<std::vector<VertexId>> extract_path(
    const std::vector<VertexId>& parents, VertexId source, VertexId target);

// Certifies a parent tree against a distance array: every reached vertex's
// parent edge must exist and attain its distance. Returns the first
// offending vertex, or nullopt when valid.
std::optional<VertexId> validate_parent_tree(
    const Csr& csr, VertexId source, const std::vector<Distance>& dist,
    const std::vector<VertexId>& parents);

}  // namespace rdbs::sssp
