// Lazy bucketed priority structure, after Julienne's work-efficient
// bucketing (Dhulipala, Blelloch & Shun, SPAA'17 — paper ref [12]).
//
// Semantics: push(v, d) files v under bucket floor(d / Δ). Entries are
// never decreased or deleted eagerly — a vertex whose distance improves is
// simply pushed again, and consumers discard stale entries at pop time
// (their current distance no longer maps to the popped bucket). This is
// the structure Δ-stepping needs: pops are always from the minimum
// non-empty bucket, and amortized cost is O(1) per push.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "graph/types.hpp"

namespace rdbs::sssp {

class BucketQueue {
 public:
  explicit BucketQueue(graph::Weight delta);

  // Files v under the bucket of distance d.
  void push(graph::VertexId v, graph::Distance d);

  // Index of the minimum non-empty bucket (nullopt when drained).
  std::optional<std::uint64_t> min_bucket() const;

  // Removes and returns the minimum non-empty bucket's entries (possibly
  // containing stale duplicates — filter against current distances).
  std::vector<graph::VertexId> pop_min_bucket();

  // Appends into an existing container instead of allocating.
  void pop_min_bucket_into(std::vector<graph::VertexId>& out);

  bool empty() const { return buckets_.empty(); }
  std::size_t bucket_count() const { return buckets_.size(); }
  std::uint64_t total_entries() const { return total_entries_; }

  graph::Weight delta() const { return delta_; }
  std::uint64_t bucket_of(graph::Distance d) const {
    return static_cast<std::uint64_t>(d / delta_);
  }

 private:
  graph::Weight delta_;
  std::map<std::uint64_t, std::vector<graph::VertexId>> buckets_;
  std::uint64_t total_entries_ = 0;
};

}  // namespace rdbs::sssp
