#include "sssp/bellman_ford.hpp"

#include <vector>

#include "common/macros.hpp"

namespace rdbs::sssp {

SsspResult bellman_ford(const Csr& csr, VertexId source) {
  RDBS_CHECK(source < csr.num_vertices());
  SsspResult result;
  result.distances.assign(csr.num_vertices(), kInfiniteDistance);
  result.distances[source] = 0;

  std::vector<VertexId> frontier{source};
  std::vector<VertexId> next;
  std::vector<char> in_next(csr.num_vertices(), 0);

  while (!frontier.empty()) {
    ++result.work.iterations;
    next.clear();
    for (const VertexId u : frontier) {
      const Distance du = result.distances[u];
      const auto neighbors = csr.neighbors(u);
      const auto weights = csr.edge_weights(u);
      for (std::size_t i = 0; i < neighbors.size(); ++i) {
        const VertexId v = neighbors[i];
        const Distance through = du + weights[i];
        ++result.work.relaxations;
        if (through < result.distances[v]) {
          result.distances[v] = through;
          ++result.work.total_updates;
          if (!in_next[v]) {
            in_next[v] = 1;
            next.push_back(v);
          }
        }
      }
    }
    for (const VertexId v : next) in_next[v] = 0;
    frontier.swap(next);
  }
  finalize_valid_updates(result, source);
  return result;
}

}  // namespace rdbs::sssp
