#include "sssp/rho_stepping.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <vector>

#ifdef RDBS_HAVE_OPENMP
#include <omp.h>
#endif

#include "common/macros.hpp"

namespace rdbs::sssp {

namespace {

bool atomic_min_distance(std::atomic<std::uint64_t>& cell, Distance value) {
  std::uint64_t desired;
  std::memcpy(&desired, &value, sizeof desired);
  std::uint64_t observed = cell.load(std::memory_order_relaxed);
  for (;;) {
    Distance current;
    std::memcpy(&current, &observed, sizeof current);
    if (value >= current) return false;
    if (cell.compare_exchange_weak(observed, desired,
                                   std::memory_order_relaxed)) {
      return true;
    }
  }
}

}  // namespace

SsspResult rho_stepping(const Csr& csr, VertexId source,
                        const RhoSteppingOptions& options) {
  RDBS_CHECK(source < csr.num_vertices());
  RDBS_CHECK(options.rho > 0);
  const VertexId n = csr.num_vertices();

#ifdef RDBS_HAVE_OPENMP
  if (options.num_threads > 0) omp_set_num_threads(options.num_threads);
#endif

  std::vector<std::atomic<std::uint64_t>> dist_bits(n);
  {
    std::uint64_t inf_bits;
    const Distance inf = kInfiniteDistance;
    std::memcpy(&inf_bits, &inf, sizeof inf_bits);
    for (auto& cell : dist_bits) {
      cell.store(inf_bits, std::memory_order_relaxed);
    }
    std::uint64_t zero_bits;
    const Distance zero = 0;
    std::memcpy(&zero_bits, &zero, sizeof zero_bits);
    dist_bits[source].store(zero_bits, std::memory_order_relaxed);
  }
  auto load_dist = [&](VertexId v) {
    const std::uint64_t bits = dist_bits[v].load(std::memory_order_relaxed);
    Distance d;
    std::memcpy(&d, &bits, sizeof d);
    return d;
  };

  SsspResult result;
  std::vector<VertexId> pool{source};
  std::vector<char> in_pool(n, 0);
  in_pool[source] = 1;
  std::uint64_t relaxations = 0;
  std::uint64_t updates = 0;

  std::vector<std::pair<Distance, VertexId>> keyed;
  while (!pool.empty()) {
    ++result.work.iterations;

    // Lazy extract-ρ-min: when the pool exceeds ρ, nth_element selects the
    // batch (the LAB-PQ's amortized selection); otherwise take everything.
    std::vector<VertexId> batch;
    if (pool.size() <= options.rho) {
      batch.swap(pool);
    } else {
      keyed.clear();
      keyed.reserve(pool.size());
      for (const VertexId v : pool) keyed.emplace_back(load_dist(v), v);
      std::nth_element(keyed.begin(),
                       keyed.begin() + static_cast<std::ptrdiff_t>(options.rho),
                       keyed.end());
      batch.reserve(options.rho);
      pool.clear();
      for (std::size_t i = 0; i < keyed.size(); ++i) {
        if (i < options.rho) {
          batch.push_back(keyed[i].second);
        } else {
          pool.push_back(keyed[i].second);
        }
      }
    }
    for (const VertexId v : batch) in_pool[v] = 0;

#ifdef RDBS_HAVE_OPENMP
    const int max_threads = omp_get_max_threads();
#else
    const int max_threads = 1;
#endif
    std::vector<std::vector<VertexId>> discovered(
        static_cast<std::size_t>(max_threads));

#ifdef RDBS_HAVE_OPENMP
#pragma omp parallel for schedule(dynamic, 64) \
    reduction(+ : relaxations, updates)
#endif
    for (std::size_t b = 0; b < batch.size(); ++b) {
#ifdef RDBS_HAVE_OPENMP
      const int tid = omp_get_thread_num();
#else
      const int tid = 0;
#endif
      const VertexId u = batch[b];
      const Distance du = load_dist(u);
      const auto neighbors = csr.neighbors(u);
      const auto weights = csr.edge_weights(u);
      for (std::size_t i = 0; i < neighbors.size(); ++i) {
        const VertexId v = neighbors[i];
        ++relaxations;
        if (atomic_min_distance(dist_bits[v], du + weights[i])) {
          ++updates;
          discovered[static_cast<std::size_t>(tid)].push_back(v);
        }
      }
    }
    for (const auto& local : discovered) {
      for (const VertexId v : local) {
        if (!in_pool[v]) {
          in_pool[v] = 1;
          pool.push_back(v);
        }
      }
    }
  }

  result.work.relaxations = relaxations;
  result.work.total_updates = updates;
  result.distances.resize(n);
  for (VertexId v = 0; v < n; ++v) result.distances[v] = load_dist(v);
  finalize_valid_updates(result, source);
  return result;
}

}  // namespace rdbs::sssp
