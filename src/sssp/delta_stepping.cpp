#include "sssp/delta_stepping.hpp"

#include <algorithm>
#include <cmath>

#include "sssp/bucket_queue.hpp"

#include "common/macros.hpp"

namespace rdbs::sssp {

namespace {

std::uint64_t bucket_of(Distance d, Weight delta) {
  return static_cast<std::uint64_t>(d / delta);
}

}  // namespace

std::size_t BucketTrace::peak_bucket() const {
  RDBS_CHECK(!active_per_bucket.empty());
  return static_cast<std::size_t>(
      std::max_element(active_per_bucket.begin(), active_per_bucket.end()) -
      active_per_bucket.begin());
}

DeltaSteppingResult delta_stepping(const Csr& csr, VertexId source,
                                   const DeltaSteppingOptions& options) {
  RDBS_CHECK(source < csr.num_vertices());
  RDBS_CHECK(options.delta > 0);
  const Weight delta = options.delta;

  DeltaSteppingResult out;
  SsspResult& result = out.sssp;
  result.distances.assign(csr.num_vertices(), kInfiniteDistance);
  result.distances[source] = 0;

  // Buckets with lazy deletion (Julienne-style BucketQueue): a vertex may
  // appear in several buckets; an entry is live only if the vertex's
  // current distance still maps there.
  BucketQueue buckets(delta);
  buckets.push(source, 0);

  // Scratch marking which vertices were settled in the current bucket
  // (their heavy edges are relaxed once, in phase 2).
  std::vector<char> settled_in_bucket(csr.num_vertices(), 0);
  std::vector<VertexId> settled_list;
  // Tracks membership in the next phase-1 frontier to avoid duplicates.
  std::vector<char> in_frontier(csr.num_vertices(), 0);
  // Distinct-activation marker per bucket for the Fig. 2 trace.
  std::vector<std::uint64_t> activated_in(csr.num_vertices(), ~0ull);

  auto record_activation = [&](std::uint64_t bucket, VertexId v) {
    if (!options.instrument) return;
    if (out.trace.active_per_bucket.size() <= bucket) {
      out.trace.active_per_bucket.resize(bucket + 1, 0);
    }
    if (activated_in[v] != bucket) {
      activated_in[v] = bucket;
      ++out.trace.active_per_bucket[bucket];
    }
  };

  // Relax one edge; returns true if it updated and the new bucket index.
  auto relax = [&](VertexId u, VertexId v, Weight w,
                   std::uint64_t* new_bucket) {
    ++result.work.relaxations;
    const Distance through = result.distances[u] + w;
    if (through < result.distances[v]) {
      result.distances[v] = through;
      ++result.work.total_updates;
      *new_bucket = buckets.bucket_of(through);
      return true;
    }
    return false;
  };

  const bool split = csr.has_heavy_offsets();

  while (!buckets.empty()) {
    const std::uint64_t current = *buckets.min_bucket();
    std::vector<VertexId> frontier = buckets.pop_min_bucket();

    settled_list.clear();
    std::vector<std::uint64_t>* phase1_sizes = nullptr;
    std::uint64_t* phase1_upds = nullptr;
    if (options.instrument) {
      if (out.trace.phase1_frontiers.size() <= current) {
        out.trace.phase1_frontiers.resize(current + 1);
        out.trace.phase1_updates.resize(current + 1, 0);
      }
      phase1_sizes = &out.trace.phase1_frontiers[current];
      phase1_upds = &out.trace.phase1_updates[current];
    }

    // --- Phase 1: light edges until the bucket stops refilling -----------
    while (!frontier.empty()) {
      ++result.work.iterations;
      // Drop stale entries (distance moved to a later bucket since insert).
      std::vector<VertexId> live;
      live.reserve(frontier.size());
      for (const VertexId v : frontier) {
        in_frontier[v] = 0;
        if (result.distances[v] != kInfiniteDistance &&
            bucket_of(result.distances[v], delta) == current) {
          live.push_back(v);
        }
      }
      if (live.empty()) break;
      if (phase1_sizes) phase1_sizes->push_back(live.size());

      std::vector<VertexId> next;
      for (const VertexId u : live) {
        record_activation(current, u);
        if (!settled_in_bucket[u]) {
          settled_in_bucket[u] = 1;
          settled_list.push_back(u);
        }
        const auto neighbors = csr.neighbors(u);
        const auto weights = csr.edge_weights(u);
        const EdgeIndex begin = csr.row_begin(u);
        const EdgeIndex light_end =
            split ? csr.heavy_begin(u) : csr.row_end(u);
        for (EdgeIndex e = begin; e < light_end; ++e) {
          const std::size_t i = static_cast<std::size_t>(e - begin);
          // Without presorted adjacency, every edge is checked against Δ
          // (the branch the paper's Motivation 1 blames for divergence).
          if (!split && weights[i] >= delta) continue;
          std::uint64_t new_bucket = 0;
          if (relax(u, neighbors[i], weights[i], &new_bucket)) {
            if (phase1_upds) ++(*phase1_upds);
            if (new_bucket == current) {
              if (!in_frontier[neighbors[i]]) {
                in_frontier[neighbors[i]] = 1;
                next.push_back(neighbors[i]);
              }
            } else {
              (void)new_bucket;
              buckets.push(neighbors[i], result.distances[neighbors[i]]);
            }
          }
        }
      }
      frontier.swap(next);
    }

    // --- Phase 2: heavy edges of everything settled in this bucket -------
    for (const VertexId u : settled_list) {
      settled_in_bucket[u] = 0;
      const auto neighbors = csr.neighbors(u);
      const auto weights = csr.edge_weights(u);
      const EdgeIndex begin = csr.row_begin(u);
      const EdgeIndex heavy_begin = split ? csr.heavy_begin(u) : begin;
      for (EdgeIndex e = heavy_begin; e < csr.row_end(u); ++e) {
        const std::size_t i = static_cast<std::size_t>(e - begin);
        if (!split && weights[i] < delta) continue;
        std::uint64_t new_bucket = 0;
        if (relax(u, neighbors[i], weights[i], &new_bucket)) {
          (void)new_bucket;
          buckets.push(neighbors[i], result.distances[neighbors[i]]);
        }
      }
    }
    // --- Phase 3 is implicit: the map's begin() is the next bucket -------
  }

  finalize_valid_updates(result, source);
  return out;
}

SsspResult delta_stepping_distances(const Csr& csr, VertexId source,
                                    Weight delta) {
  DeltaSteppingOptions options;
  options.delta = delta;
  return delta_stepping(csr, source, options).sssp;
}

}  // namespace rdbs::sssp
