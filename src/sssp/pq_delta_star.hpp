// PQ-Δ* — CPU comparator (paper Table 2), modeled on Dong et al.'s stepping
// framework (SPAA'21): a Lazy-Batched Priority Queue (LAB-PQ) feeds
// Δ*-stepping. The queue keeps an unordered active pool; each step lazily
// extracts the batch of vertices within Δ* of the current minimum tentative
// distance and relaxes them in parallel (OpenMP on the host, matching the
// paper's 26-core CPU runs). Stale pool entries are discarded on extraction
// rather than eagerly decreased — the "lazy" in LAB-PQ.
#pragma once

#include "sssp/result.hpp"

namespace rdbs::sssp {

struct PqDeltaStarOptions {
  // Initial batch window; adapted each step toward target_batch vertices
  // (Δ*-stepping's self-tuning rule).
  Weight delta_star = 1.0;
  std::size_t target_batch = 2048;
  int num_threads = 0;  // 0 = OpenMP default
};

SsspResult pq_delta_star(const Csr& csr, VertexId source,
                         const PqDeltaStarOptions& options = {});

}  // namespace rdbs::sssp
