#include "sssp/ligra_like.hpp"

#include <algorithm>
#include <cstring>

#include "common/macros.hpp"

namespace rdbs::sssp::ligra {

VertexSubset::VertexSubset(graph::VertexId universe_size)
    : universe_(universe_size), dense_(universe_size, 0) {}

VertexSubset::VertexSubset(graph::VertexId universe_size,
                           std::vector<graph::VertexId> sparse)
    : universe_(universe_size),
      sparse_(std::move(sparse)),
      dense_(universe_size, 0) {
  for (const graph::VertexId v : sparse_) {
    RDBS_CHECK(v < universe_);
    dense_[v] = 1;
  }
}

void VertexSubset::add(graph::VertexId v) {
  RDBS_CHECK(v < universe_);
  if (!dense_[v]) {
    dense_[v] = 1;
    sparse_.push_back(v);
  }
}

void VertexSubset::clear() {
  for (const graph::VertexId v : sparse_) dense_[v] = 0;
  sparse_.clear();
}

VertexSubset edge_map(const Csr& csr, const VertexSubset& frontier,
                      const EdgeMapFunctor& f, EdgeMapStats* stats) {
  RDBS_CHECK(frontier.universe_size() == csr.num_vertices());
  VertexSubset next(csr.num_vertices());

  // Frontier out-edge volume decides the traversal direction.
  std::uint64_t frontier_edges = 0;
  for (const graph::VertexId v : frontier.vertices()) {
    frontier_edges += csr.degree(v);
  }
  const bool dense =
      static_cast<double>(frontier_edges) >
      kDenseThresholdFraction * static_cast<double>(csr.num_edges());

  if (dense) {
    if (stats) ++stats->dense_rounds;
    // Dense (pull) direction: every candidate v scans its in-edges (the
    // symmetric CSR doubles as the in-edge list) for frontier sources.
    for (graph::VertexId v = 0; v < csr.num_vertices(); ++v) {
      if (!f.cond(v)) continue;
      const auto neighbors = csr.neighbors(v);
      const auto weights = csr.edge_weights(v);
      for (std::size_t i = 0; i < neighbors.size(); ++i) {
        const graph::VertexId u = neighbors[i];
        if (!frontier.contains(u)) continue;
        if (stats) ++stats->edges_traversed;
        if (f.update(u, v, weights[i])) {
          next.add(v);
          // Ligra's dense mode may break after the first activation;
          // continuing is also legal — we continue so update() sees every
          // incoming edge (needed for min-style reductions).
        }
      }
    }
  } else {
    if (stats) ++stats->sparse_rounds;
    // Sparse (push) direction: out-edges of the frontier.
    for (const graph::VertexId u : frontier.vertices()) {
      const auto neighbors = csr.neighbors(u);
      const auto weights = csr.edge_weights(u);
      for (std::size_t i = 0; i < neighbors.size(); ++i) {
        const graph::VertexId v = neighbors[i];
        if (!f.cond(v)) continue;
        if (stats) ++stats->edges_traversed;
        if (f.update(u, v, weights[i])) next.add(v);
      }
    }
  }
  return next;
}

void vertex_map(const VertexSubset& subset,
                const std::function<void(graph::VertexId)>& f) {
  const auto& vertices = subset.vertices();
#ifdef RDBS_HAVE_OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    f(vertices[i]);
  }
}

LigraSsspResult sssp_bellman_ford(const Csr& csr, graph::VertexId source) {
  RDBS_CHECK(source < csr.num_vertices());
  LigraSsspResult out;
  SsspResult& result = out.sssp;
  result.distances.assign(csr.num_vertices(), kInfiniteDistance);
  result.distances[source] = 0;
  auto& dist = result.distances;

  EdgeMapFunctor relax;
  relax.cond = [](graph::VertexId) { return true; };
  relax.update = [&](graph::VertexId u, graph::VertexId v,
                     graph::Weight w) {
    ++result.work.relaxations;
    const graph::Distance through = dist[u] + w;
    if (through < dist[v]) {
      dist[v] = through;
      ++result.work.total_updates;
      return true;
    }
    return false;
  };

  VertexSubset frontier(csr.num_vertices(), {source});
  while (!frontier.empty()) {
    ++result.work.iterations;
    frontier = edge_map(csr, frontier, relax, &out.stats);
  }
  finalize_valid_updates(result, source);
  return out;
}

}  // namespace rdbs::sssp::ligra
