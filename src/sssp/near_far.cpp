#include "sssp/near_far.hpp"

#include <vector>

#include "common/macros.hpp"

namespace rdbs::sssp {

SsspResult near_far(const Csr& csr, VertexId source, Weight delta) {
  RDBS_CHECK(source < csr.num_vertices());
  RDBS_CHECK(delta > 0);

  SsspResult result;
  result.distances.assign(csr.num_vertices(), kInfiniteDistance);
  result.distances[source] = 0;

  std::vector<VertexId> near{source};
  std::vector<VertexId> far;
  Distance threshold = delta;

  while (!near.empty() || !far.empty()) {
    if (near.empty()) {
      // Split Far: promote entries now below the advanced threshold.
      // Advance the threshold to just past the smallest far distance so at
      // least one vertex is promoted per split.
      Distance min_far = kInfiniteDistance;
      for (const VertexId v : far) {
        min_far = std::min(min_far, result.distances[v]);
      }
      if (min_far == kInfiniteDistance) break;  // all stale
      while (threshold <= min_far) threshold += delta;
      std::vector<VertexId> still_far;
      for (const VertexId v : far) {
        if (result.distances[v] == kInfiniteDistance) continue;
        if (result.distances[v] < threshold) {
          near.push_back(v);
        } else {
          still_far.push_back(v);
        }
      }
      far.swap(still_far);
      continue;
    }

    ++result.work.iterations;
    std::vector<VertexId> next_near;
    for (const VertexId u : near) {
      // Lazy deletion: skip entries superseded by a smaller distance that
      // was already processed in this pile.
      if (result.distances[u] >= threshold) {
        far.push_back(u);
        continue;
      }
      const auto neighbors = csr.neighbors(u);
      const auto weights = csr.edge_weights(u);
      for (std::size_t i = 0; i < neighbors.size(); ++i) {
        const VertexId v = neighbors[i];
        const Distance through = result.distances[u] + weights[i];
        ++result.work.relaxations;
        if (through < result.distances[v]) {
          result.distances[v] = through;
          ++result.work.total_updates;
          if (through < threshold) {
            next_near.push_back(v);
          } else {
            far.push_back(v);
          }
        }
      }
    }
    near.swap(next_near);
  }

  finalize_valid_updates(result, source);
  return result;
}

}  // namespace rdbs::sssp
