// Near-Far worklist method of Davidson et al. (IPDPS'14), the two-bucket
// Δ-stepping variant the paper cites as prior GPU work: a Near pile holds
// vertices below the current distance threshold, everything else falls into
// a single Far pile that is re-split when Near drains.
#pragma once

#include "sssp/result.hpp"

namespace rdbs::sssp {

SsspResult near_far(const Csr& csr, VertexId source, Weight delta);

}  // namespace rdbs::sssp
