// Frontier-based Bellman-Ford (paper §2.1): relaxes every out-edge of every
// active vertex each round until no distance changes. Maximally parallel,
// maximally redundant — the work-inefficiency extreme of the Δ spectrum
// (Δ-stepping with Δ = ∞).
#pragma once

#include "sssp/result.hpp"

namespace rdbs::sssp {

SsspResult bellman_ford(const Csr& csr, VertexId source);

}  // namespace rdbs::sssp
