// Certification of an SSSP solution.
//
// A distance array is exactly the shortest-distance function iff:
//   (1) dist[source] == 0;
//   (2) feasibility: dist[v] <= dist[u] + w for every edge (u, v, w)
//       (no edge can still relax);
//   (3) achievability: every reached v != source has an in-edge (u, v, w)
//       with dist[v] == dist[u] + w, and every unreached vertex has no
//       reached in-neighbor.
// This certificate is independent of which algorithm produced the array and
// is exact under floating point because all algorithms in this library
// compute path lengths as left-to-right sums.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sssp/result.hpp"

namespace rdbs::sssp {

// Returns std::nullopt if valid, otherwise a human-readable description of
// the first violated condition. `csr` must contain, for every undirected
// edge, both directions (the library's standard representation).
std::optional<std::string> validate_distances(
    const Csr& csr, VertexId source, const std::vector<Distance>& dist);

}  // namespace rdbs::sssp
