#include "sssp/pq_delta_star.hpp"

#include <atomic>
#include <cmath>
#include <cstring>
#include <vector>

#ifdef RDBS_HAVE_OPENMP
#include <omp.h>
#endif

#include "common/macros.hpp"

namespace rdbs::sssp {

namespace {

// Lock-free atomic min on a double encoded through its bit pattern.
// Non-negative IEEE doubles order the same as their bit patterns, so a
// compare-exchange loop on the raw bits implements atomicMin exactly.
bool atomic_min_distance(std::atomic<std::uint64_t>& cell, Distance value) {
  std::uint64_t desired;
  std::memcpy(&desired, &value, sizeof desired);
  std::uint64_t observed = cell.load(std::memory_order_relaxed);
  for (;;) {
    Distance current;
    std::memcpy(&current, &observed, sizeof current);
    if (value >= current) return false;
    if (cell.compare_exchange_weak(observed, desired,
                                   std::memory_order_relaxed)) {
      return true;
    }
  }
}

}  // namespace

SsspResult pq_delta_star(const Csr& csr, VertexId source,
                         const PqDeltaStarOptions& options) {
  RDBS_CHECK(source < csr.num_vertices());
  RDBS_CHECK(options.delta_star > 0);
  const VertexId n = csr.num_vertices();

#ifdef RDBS_HAVE_OPENMP
  if (options.num_threads > 0) omp_set_num_threads(options.num_threads);
#endif

  // Distances live in atomics for the parallel relaxation step.
  std::vector<std::atomic<std::uint64_t>> dist_bits(n);
  {
    std::uint64_t inf_bits;
    const Distance inf = kInfiniteDistance;
    std::memcpy(&inf_bits, &inf, sizeof inf_bits);
    for (auto& cell : dist_bits) {
      cell.store(inf_bits, std::memory_order_relaxed);
    }
    std::uint64_t zero_bits = 0;
    const Distance zero = 0;
    std::memcpy(&zero_bits, &zero, sizeof zero_bits);
    dist_bits[source].store(zero_bits, std::memory_order_relaxed);
  }
  auto load_dist = [&](VertexId v) {
    const std::uint64_t bits = dist_bits[v].load(std::memory_order_relaxed);
    Distance d;
    std::memcpy(&d, &bits, sizeof d);
    return d;
  };

  SsspResult result;
  Weight window = options.delta_star;

  // The lazy pool: vertices whose distance decreased since last extraction.
  std::vector<VertexId> pool{source};
  std::vector<char> in_pool(n, 0);
  in_pool[source] = 1;

  std::uint64_t relaxations = 0;
  std::uint64_t updates = 0;

  while (!pool.empty()) {
    ++result.work.iterations;

    // Find the current minimum tentative distance in the pool (lazy
    // extract-min over the whole pool; LAB-PQ amortizes this scan).
    Distance min_dist = kInfiniteDistance;
    for (const VertexId v : pool) min_dist = std::min(min_dist, load_dist(v));
    const Distance threshold = min_dist + window;

    // Partition: the batch to relax now vs. the vertices left pooled.
    std::vector<VertexId> batch;
    std::vector<VertexId> remaining;
    batch.reserve(pool.size());
    for (const VertexId v : pool) {
      if (load_dist(v) <= threshold) {
        batch.push_back(v);
      } else {
        remaining.push_back(v);
      }
    }
    for (const VertexId v : batch) in_pool[v] = 0;
    pool.swap(remaining);

    // Adapt the window toward the target batch size (multiplicative
    // update, clamped to a sane range around the initial Δ*).
    if (batch.size() > 2 * options.target_batch) {
      window = std::max(window * 0.5, options.delta_star / 64);
    } else if (batch.size() < options.target_batch / 2) {
      window = std::min(window * 2.0, options.delta_star * 64);
    }

    // Parallel relaxation of the batch; newly-improved vertices are
    // collected per thread and merged into the pool afterwards.
    std::vector<std::vector<VertexId>> discovered;
#ifdef RDBS_HAVE_OPENMP
    const int max_threads = omp_get_max_threads();
#else
    const int max_threads = 1;
#endif
    discovered.resize(static_cast<std::size_t>(max_threads));

#ifdef RDBS_HAVE_OPENMP
#pragma omp parallel for schedule(dynamic, 64) \
    reduction(+ : relaxations, updates)
#endif
    for (std::size_t b = 0; b < batch.size(); ++b) {
#ifdef RDBS_HAVE_OPENMP
      const int tid = omp_get_thread_num();
#else
      const int tid = 0;
#endif
      const VertexId u = batch[b];
      const Distance du = load_dist(u);
      const auto neighbors = csr.neighbors(u);
      const auto weights = csr.edge_weights(u);
      for (std::size_t i = 0; i < neighbors.size(); ++i) {
        const VertexId v = neighbors[i];
        const Distance through = du + weights[i];
        ++relaxations;
        if (atomic_min_distance(dist_bits[v], through)) {
          ++updates;
          discovered[static_cast<std::size_t>(tid)].push_back(v);
        }
      }
    }
    for (const auto& local : discovered) {
      for (const VertexId v : local) {
        if (!in_pool[v]) {
          in_pool[v] = 1;
          pool.push_back(v);
        }
      }
    }
  }

  result.work.relaxations = relaxations;
  result.work.total_updates = updates;
  result.distances.resize(n);
  for (VertexId v = 0; v < n; ++v) result.distances[v] = load_dist(v);
  finalize_valid_updates(result, source);
  return result;
}

}  // namespace rdbs::sssp
