// ρ-stepping (Dong, Gu, Sun & Zhang, SPAA'21) — the other member of the
// stepping-algorithm framework the paper cites alongside Δ*-stepping [15].
// Instead of a distance window, each step extracts (up to) the ρ smallest
// tentative distances from the lazy pool and relaxes them in parallel:
// batch size is controlled directly, trading work efficiency against
// parallelism without any Δ tuning.
#pragma once

#include "sssp/result.hpp"

namespace rdbs::sssp {

struct RhoSteppingOptions {
  std::size_t rho = 2048;  // batch size (vertices per step)
  int num_threads = 0;     // 0 = OpenMP default
};

SsspResult rho_stepping(const Csr& csr, VertexId source,
                        const RhoSteppingOptions& options = {});

}  // namespace rdbs::sssp
