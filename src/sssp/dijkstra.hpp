// Dijkstra's algorithm (binary-heap), the work-efficient sequential oracle
// every other implementation is tested against (paper §2.1).
#pragma once

#include "sssp/result.hpp"

namespace rdbs::sssp {

SsspResult dijkstra(const Csr& csr, VertexId source);

}  // namespace rdbs::sssp
