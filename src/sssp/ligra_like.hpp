// Ligra-like shared-memory graph-traversal framework (Shun & Blelloch,
// PPoPP'13 — paper ref [31]).
//
// Ligra's whole interface is two higher-order operators over a frontier:
//
//   edge_map(graph, frontier, F)    — apply F.update(u, v, w) to the edges
//                                     leaving the frontier; vertices for
//                                     which F.update returns true (and
//                                     F.cond(v) held) form the next
//                                     frontier. Automatically switches
//                                     between a SPARSE traversal (iterate
//                                     the frontier's out-edges) and a DENSE
//                                     one (iterate all vertices' in-edges)
//                                     when the frontier exceeds |E|/20 —
//                                     Ligra's signature optimization.
//   vertex_map(frontier, F)         — apply F to every frontier vertex.
//
// VertexSubset is the frontier representation, convertible between sparse
// (index list) and dense (bitmap) forms. sssp_bellman_ford() is the
// paper's Ligra comparator: Bellman-Ford written in the framework, with
// OpenMP providing the shared-memory parallelism of the original.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "sssp/result.hpp"

namespace rdbs::sssp::ligra {

// A subset of vertices in sparse (list) and/or dense (flag) form.
class VertexSubset {
 public:
  explicit VertexSubset(graph::VertexId universe_size);
  VertexSubset(graph::VertexId universe_size,
               std::vector<graph::VertexId> sparse);

  graph::VertexId universe_size() const { return universe_; }
  std::uint64_t size() const { return sparse_.size(); }
  bool empty() const { return sparse_.empty(); }

  const std::vector<graph::VertexId>& vertices() const { return sparse_; }
  bool contains(graph::VertexId v) const { return dense_[v] != 0; }

  void add(graph::VertexId v);
  void clear();

 private:
  graph::VertexId universe_;
  std::vector<graph::VertexId> sparse_;
  std::vector<char> dense_;
};

// The F of edge_map: update returns true if v should join the output
// frontier; cond gates whether v is even considered (Ligra's early exit).
struct EdgeMapFunctor {
  // update(u, v, w): process edge; return "v newly activated".
  std::function<bool(graph::VertexId, graph::VertexId, graph::Weight)> update;
  // cond(v): false skips v entirely (e.g. already-settled vertices).
  std::function<bool(graph::VertexId)> cond;
};

struct EdgeMapStats {
  std::uint64_t sparse_rounds = 0;
  std::uint64_t dense_rounds = 0;
  std::uint64_t edges_traversed = 0;
};

// Threshold fraction of |E| above which edge_map goes dense (Ligra: 1/20).
inline constexpr double kDenseThresholdFraction = 1.0 / 20.0;

// One edge_map step; stats (if given) records which mode ran.
VertexSubset edge_map(const Csr& csr, const VertexSubset& frontier,
                      const EdgeMapFunctor& f, EdgeMapStats* stats = nullptr);

// vertex_map: apply f to every member (parallel; f must be thread-safe).
void vertex_map(const VertexSubset& subset,
                const std::function<void(graph::VertexId)>& f);

// Bellman-Ford SSSP written against the framework — the paper's Ligra
// comparator. Returns work stats plus the sparse/dense round split.
struct LigraSsspResult {
  SsspResult sssp;
  EdgeMapStats stats;
};

LigraSsspResult sssp_bellman_ford(const Csr& csr, graph::VertexId source);

}  // namespace rdbs::sssp::ligra
