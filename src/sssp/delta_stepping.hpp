// Synchronous Δ-stepping (Meyer & Sanders), the algorithm the paper builds
// on (§2.2) and the instrument for its Motivations 2 and 3: this
// implementation records per-bucket active-vertex counts (Fig. 2) and the
// per-iteration frontier sizes inside each bucket's phase 1 (Fig. 3).
#pragma once

#include <vector>

#include "sssp/result.hpp"

namespace rdbs::sssp {

struct DeltaSteppingOptions {
  Weight delta = 1.0;
  // Record detailed per-bucket / per-iteration counters (costs memory on
  // long runs; the bench figures turn it on, the speed paths leave it off).
  bool instrument = false;
};

struct BucketTrace {
  // Distinct vertices activated in each bucket, indexed by bucket id
  // (Fig. 2's y-axis).
  std::vector<std::uint64_t> active_per_bucket;
  // For each bucket, the phase-1 inner-iteration frontier sizes (Fig. 3's
  // series is this vector for the peak bucket).
  std::vector<std::vector<std::uint64_t>> phase1_frontiers;
  // Updates performed inside each bucket's phase 1 (total / valid are
  // finalized against the final distances).
  std::vector<std::uint64_t> phase1_updates;

  // Index of the bucket with the most active vertices.
  std::size_t peak_bucket() const;
};

struct DeltaSteppingResult {
  SsspResult sssp;
  BucketTrace trace;  // populated only when options.instrument is set
};

DeltaSteppingResult delta_stepping(const Csr& csr, VertexId source,
                                   const DeltaSteppingOptions& options);

// Convenience overload returning just the distances/work.
SsspResult delta_stepping_distances(const Csr& csr, VertexId source,
                                    Weight delta);

}  // namespace rdbs::sssp
