#include "sssp/bucket_queue.hpp"

#include "common/macros.hpp"

namespace rdbs::sssp {

BucketQueue::BucketQueue(graph::Weight delta) : delta_(delta) {
  RDBS_CHECK(delta > 0);
}

void BucketQueue::push(graph::VertexId v, graph::Distance d) {
  RDBS_DCHECK(d >= 0 && d != graph::kInfiniteDistance);
  buckets_[bucket_of(d)].push_back(v);
  ++total_entries_;
}

std::optional<std::uint64_t> BucketQueue::min_bucket() const {
  if (buckets_.empty()) return std::nullopt;
  return buckets_.begin()->first;
}

std::vector<graph::VertexId> BucketQueue::pop_min_bucket() {
  std::vector<graph::VertexId> out;
  pop_min_bucket_into(out);
  return out;
}

void BucketQueue::pop_min_bucket_into(std::vector<graph::VertexId>& out) {
  RDBS_CHECK_MSG(!buckets_.empty(), "pop from an empty BucketQueue");
  auto it = buckets_.begin();
  total_entries_ -= it->second.size();
  if (out.empty()) {
    out = std::move(it->second);
  } else {
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  buckets_.erase(it);
}

}  // namespace rdbs::sssp
