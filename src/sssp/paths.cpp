#include "sssp/paths.hpp"

#include <algorithm>

#include "common/macros.hpp"

namespace rdbs::sssp {

std::vector<VertexId> build_parent_tree(const Csr& csr, VertexId source,
                                        const std::vector<Distance>& dist) {
  RDBS_CHECK(dist.size() == csr.num_vertices());
  RDBS_CHECK(source < csr.num_vertices());
  std::vector<VertexId> parents(csr.num_vertices(), graph::kInvalidVertex);

  // One sweep over out-edges: u "claims" parenthood of v when the edge
  // attains dist[v]; ties resolved toward the smaller u for determinism.
  for (VertexId u = 0; u < csr.num_vertices(); ++u) {
    if (dist[u] == graph::kInfiniteDistance) continue;
    const auto neighbors = csr.neighbors(u);
    const auto weights = csr.edge_weights(u);
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      const VertexId v = neighbors[i];
      if (v == source) continue;
      if (dist[u] + weights[i] == dist[v]) {
        if (parents[v] == graph::kInvalidVertex || u < parents[v]) {
          parents[v] = u;
        }
      }
    }
  }
  parents[source] = graph::kInvalidVertex;
  return parents;
}

std::optional<std::vector<VertexId>> extract_path(
    const std::vector<VertexId>& parents, VertexId source, VertexId target) {
  RDBS_CHECK(target < parents.size());
  if (target != source && parents[target] == graph::kInvalidVertex) {
    return std::nullopt;
  }
  std::vector<VertexId> path;
  VertexId cursor = target;
  while (cursor != source) {
    path.push_back(cursor);
    cursor = parents[cursor];
    RDBS_CHECK_MSG(cursor != graph::kInvalidVertex,
                   "broken parent chain (tree not rooted at source?)");
    RDBS_CHECK_MSG(path.size() <= parents.size(),
                   "parent cycle detected");
  }
  path.push_back(source);
  std::reverse(path.begin(), path.end());
  return path;
}

std::optional<VertexId> validate_parent_tree(
    const Csr& csr, VertexId source, const std::vector<Distance>& dist,
    const std::vector<VertexId>& parents) {
  if (parents.size() != csr.num_vertices()) return source;
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    if (v == source) {
      if (parents[v] != graph::kInvalidVertex) return v;
      continue;
    }
    if (dist[v] == graph::kInfiniteDistance) {
      if (parents[v] != graph::kInvalidVertex) return v;
      continue;
    }
    const VertexId p = parents[v];
    if (p == graph::kInvalidVertex || p >= csr.num_vertices()) return v;
    // The parent edge must exist and attain dist[v].
    bool attained = false;
    const auto neighbors = csr.neighbors(p);
    const auto weights = csr.edge_weights(p);
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      if (neighbors[i] == v && dist[p] + weights[i] == dist[v]) {
        attained = true;
        break;
      }
    }
    if (!attained) return v;
  }
  return std::nullopt;
}

}  // namespace rdbs::sssp
