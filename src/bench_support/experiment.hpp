// Shared machinery for the bench/ harness: dataset preparation, source
// selection, experiment runners for every solver in the library, and the
// paper's published numbers for side-by-side reporting.
//
// Experimental method follows §5.1.3 scaled to the simulator: sources are
// chosen pseudo-randomly inside the largest connected component; the
// simulator is deterministic, so one run per source replaces the paper's
// 10 repetitions, and the source count is configurable (default 4; the
// paper uses 64 sources x 10 runs on real hardware).
#pragma once

#include <string>
#include <vector>

#include "common/cli.hpp"
#include "core/adds.hpp"
#include "core/rdbs.hpp"
#include "graph/surrogates.hpp"
#include "sssp/result.hpp"

namespace rdbs::bench {

using core::GpuRunResult;
using core::GpuSsspOptions;
using graph::Csr;
using graph::VertexId;

// Harness-wide configuration parsed from the command line (every bench
// binary accepts the same flags).
struct HarnessConfig {
  int size_scale = 0;       // surrogate size (each +1 doubles vertices)
  int num_sources = 4;      // sources per dataset (sim is deterministic)
  std::uint64_t seed = 42;
  std::string data_dir;     // optional real-dataset directory
  std::string device = "v100";
  bool csv = false;         // also emit CSV rows
  // gpusim replay worker threads (0 = all available). Applied process-wide
  // by from_cli; results are bit-identical for every value.
  int sim_threads = 0;
  // Concurrent gpusim streams for batched multi-source runs (QueryBatch);
  // 1 = sequential. Distances are identical for every value.
  int batch_streams = 4;

  static HarnessConfig from_cli(const CliArgs& args);
};

gpusim::DeviceSpec device_by_name(const std::string& name);

// Loads a dataset by paper name with the harness config applied.
Csr load_bench_graph(const std::string& name, const HarnessConfig& config);

// `count` pseudo-random source vertices inside the largest component.
std::vector<VertexId> pick_sources(const Csr& csr, int count,
                                   std::uint64_t seed);

// Aggregated measurement over a set of sources.
struct Measurement {
  double mean_ms = 0;
  double mean_gteps = 0;
  double total_updates = 0;       // mean per source
  double valid_updates = 0;       // mean per source
  gpusim::Counters counters;      // mean per source (integer-truncated)
  double redundancy_ratio() const {
    return valid_updates == 0 ? 0 : total_updates / valid_updates;
  }
};

// RDBS engine (any flag combination) averaged over sources.
Measurement run_gpu_delta_stepping(const Csr& csr,
                                   const gpusim::DeviceSpec& device,
                                   const GpuSsspOptions& options,
                                   const std::vector<VertexId>& sources);

// ADDS comparator averaged over sources.
Measurement run_adds(const Csr& csr, const gpusim::DeviceSpec& device,
                     const core::AddsOptions& options,
                     const std::vector<VertexId>& sources);

// PQ-Δ* on the host CPU (wall-clock), averaged over sources.
Measurement run_pq_delta_star(const Csr& csr,
                              const std::vector<VertexId>& sources,
                              graph::Weight delta_star);

// Default Δ0 for the harness's uniform 1..1000 integer weights.
inline constexpr graph::Weight kDefaultDelta0 = 100.0;

// Empirical per-graph Δ0, mirroring the paper's "empirical Δ value"
// practice: sized so the bucket walk spans on the order of 64 buckets
// (estimated from hop diameter x mean weight). High-diameter road networks
// get a much wider Δ than low-diameter social graphs; without this, a road
// graph walks thousands of buckets of full-vertex scans (Algorithm 2's
// "for v in V" phase) and the scan cost swamps everything.
graph::Weight empirical_delta0(const Csr& csr, std::uint64_t seed);

// The six datasets of Fig. 8 / Table 2 / Fig. 10 / Fig. 12, paper order.
const std::vector<std::string>& six_graph_suite();
// The ten datasets of Fig. 9, paper order.
const std::vector<std::string>& ten_graph_suite();

// --- published numbers (for the "paper" columns) ---------------------------
struct PaperTable2Row {
  const char* graph;
  double pq_ms;    // PQ-Δ* (CPU)
  double adds_ms;  // ADDS (GPU)
  double rdbs_ms;  // RDBS
};
const std::vector<PaperTable2Row>& paper_table2();

struct PaperFig8Row {
  const char* graph;
  double basyn_pro;        // BASYN+PRO speedup over BL
  double basyn_adwl;       // BASYN+ADWL
  double all;              // BASYN+PRO+ADWL
};
const std::vector<PaperFig8Row>& paper_fig8();

struct PaperFig9Row {
  const char* graph;
  double rdbs_ratio;       // total/valid updates of RDBS
  double adds_update_factor;  // ADDS total updates / RDBS total updates
  double perf_speedup;     // RDBS speedup over ADDS
};
const std::vector<PaperFig9Row>& paper_fig9();

struct PaperFig11Row {
  int scale;
  int edgefactor;
  double gteps;            // RDBS performance
  double speedup_vs_adds;
};
const std::vector<PaperFig11Row>& paper_fig11();

struct PaperFig12Row {
  const char* graph;
  double v100_over_t4_speedup;
};
const std::vector<PaperFig12Row>& paper_fig12();

}  // namespace rdbs::bench
