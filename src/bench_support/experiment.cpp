#include "bench_support/experiment.hpp"

#include <stdexcept>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "graph/stats.hpp"
#include "sssp/pq_delta_star.hpp"

namespace rdbs::bench {

HarnessConfig HarnessConfig::from_cli(const CliArgs& args) {
  HarnessConfig config;
  config.size_scale = static_cast<int>(args.get_int("size-scale", 0));
  config.num_sources = static_cast<int>(args.get_int("sources", 4));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  config.data_dir = args.get_string("data-dir", "");
  config.device = args.get_string("device", "v100");
  config.csv = args.get_bool("csv", false);
  config.sim_threads = static_cast<int>(args.get_int("sim-threads", 0));
  config.batch_streams = static_cast<int>(args.get_int("batch-streams", 4));
  // Engines construct their GpuSim internally; the process-wide default is
  // how one flag reaches every solver a bench binary creates.
  gpusim::GpuSim::set_default_worker_threads(config.sim_threads);
  return config;
}

gpusim::DeviceSpec device_by_name(const std::string& name) {
  if (name == "v100" || name == "V100") return gpusim::v100();
  if (name == "t4" || name == "T4") return gpusim::tesla_t4();
  if (name == "test") return gpusim::test_device();
  throw std::runtime_error("unknown device: " + name);
}

Csr load_bench_graph(const std::string& name, const HarnessConfig& config) {
  graph::LoadOptions options;
  options.size_scale = config.size_scale;
  options.weights = graph::WeightScheme::kUniformInt1To1000;
  options.seed = config.seed;
  options.data_dir = config.data_dir;
  return graph::load_dataset_by_name(name, options);
}

std::vector<VertexId> pick_sources(const Csr& csr, int count,
                                   std::uint64_t seed) {
  // Restrict to the largest component so every run does real work (a
  // source in a 2-vertex island would measure launch overhead only).
  const graph::ComponentInfo info = graph::connected_components(csr);
  std::vector<char> in_largest(csr.num_vertices(), 0);
  {
    std::vector<VertexId> stack{info.representative};
    in_largest[info.representative] = 1;
    while (!stack.empty()) {
      const VertexId u = stack.back();
      stack.pop_back();
      for (const VertexId v : csr.neighbors(u)) {
        if (!in_largest[v]) {
          in_largest[v] = 1;
          stack.push_back(v);
        }
      }
    }
  }
  Xoshiro256 rng(seed);
  std::vector<VertexId> sources;
  sources.reserve(static_cast<std::size_t>(count));
  int attempts = 0;
  while (sources.size() < static_cast<std::size_t>(count) &&
         attempts < count * 1000) {
    const auto v =
        static_cast<VertexId>(rng.next_below(csr.num_vertices()));
    ++attempts;
    if (in_largest[v]) sources.push_back(v);
  }
  if (sources.empty()) sources.push_back(info.representative);
  return sources;
}

namespace {

void accumulate(Measurement& m, double ms, const sssp::SsspResult& sssp,
                const gpusim::Counters& counters, std::uint64_t edges) {
  m.mean_ms += ms;
  m.mean_gteps += ms <= 0 ? 0 : static_cast<double>(edges) / (ms * 1e6);
  m.total_updates += static_cast<double>(sssp.work.total_updates);
  m.valid_updates += static_cast<double>(sssp.work.valid_updates);
  m.counters += counters;
}

void finalize(Measurement& m, int runs) {
  if (runs == 0) return;
  m.mean_ms /= runs;
  m.mean_gteps /= runs;
  m.total_updates /= runs;
  m.valid_updates /= runs;
  // Counters stay as sums; divide the headline ones for per-run means.
  m.counters.inst_executed_global_loads /= static_cast<std::uint64_t>(runs);
  m.counters.inst_executed_global_stores /= static_cast<std::uint64_t>(runs);
  m.counters.inst_executed_atomics /= static_cast<std::uint64_t>(runs);
  m.counters.l1_sector_accesses /= static_cast<std::uint64_t>(runs);
  m.counters.l1_sector_hits /= static_cast<std::uint64_t>(runs);
  m.counters.kernel_launches /= static_cast<std::uint64_t>(runs);
  m.counters.child_launches /= static_cast<std::uint64_t>(runs);
}

}  // namespace

Measurement run_gpu_delta_stepping(const Csr& csr,
                                   const gpusim::DeviceSpec& device,
                                   const GpuSsspOptions& options,
                                   const std::vector<VertexId>& sources) {
  Measurement m;
  core::RdbsSolver solver(csr, device, options);
  for (const VertexId source : sources) {
    const GpuRunResult result = solver.solve(source);
    accumulate(m, result.device_ms, result.sssp, result.counters,
               csr.num_edges());
  }
  finalize(m, static_cast<int>(sources.size()));
  return m;
}

Measurement run_adds(const Csr& csr, const gpusim::DeviceSpec& device,
                     const core::AddsOptions& options,
                     const std::vector<VertexId>& sources) {
  Measurement m;
  core::AddsLike adds(device, csr, options);
  for (const VertexId source : sources) {
    const GpuRunResult result = adds.run(source);
    accumulate(m, result.device_ms, result.sssp, result.counters,
               csr.num_edges());
  }
  finalize(m, static_cast<int>(sources.size()));
  return m;
}

Measurement run_pq_delta_star(const Csr& csr,
                              const std::vector<VertexId>& sources,
                              graph::Weight delta_star) {
  Measurement m;
  sssp::PqDeltaStarOptions options;
  options.delta_star = delta_star;
  for (const VertexId source : sources) {
    Timer timer;
    const sssp::SsspResult result = sssp::pq_delta_star(csr, source, options);
    accumulate(m, timer.milliseconds(), result, gpusim::Counters{},
               csr.num_edges());
  }
  finalize(m, static_cast<int>(sources.size()));
  return m;
}

graph::Weight empirical_delta0(const Csr& csr, std::uint64_t seed) {
  // Mean edge weight from a deterministic sample.
  double mean_weight = 0;
  const std::uint64_t m = csr.num_edges();
  if (m == 0) return kDefaultDelta0;
  const std::uint64_t samples = std::min<std::uint64_t>(m, 4096);
  Xoshiro256 rng(seed);
  for (std::uint64_t i = 0; i < samples; ++i) {
    mean_weight += csr.weights()[rng.next_below(m)];
  }
  mean_weight /= static_cast<double>(samples);

  const double hop_diameter =
      std::max<std::uint32_t>(1, graph::approximate_diameter(csr, 1, seed));
  // Expected distance span ~ hop_diameter x mean_weight / 2 (shortest paths
  // prefer light edges). Each bucket costs a full-vertex scan (Algorithm 2
  // phase 2&3), so fewer, fuller buckets win until redundant work takes
  // over; high-diameter graphs need proportionally more buckets to bound
  // per-bucket relaxation work (the classic Δ-stepping tradeoff, and the
  // reason road networks are the method's weak case).
  const double bucket_budget =
      std::clamp(hop_diameter / 4.0, 16.0, 96.0);
  const double delta = hop_diameter * mean_weight / 2.0 / bucket_budget;
  return std::max<graph::Weight>(mean_weight / 2.0, delta);
}

const std::vector<std::string>& six_graph_suite() {
  static const std::vector<std::string> suite{
      "road-TX", "Amazon", "web-GL", "com-LJ", "soc-PK", "k-n21-16"};
  return suite;
}

const std::vector<std::string>& ten_graph_suite() {
  static const std::vector<std::string> suite{
      "k-n21-16", "web-GL", "soc-PK", "com-LJ", "soc-TW",
      "as-Skt",   "soc-LJ", "wiki-TK", "com-OK", "road-TX"};
  return suite;
}

const std::vector<PaperTable2Row>& paper_table2() {
  static const std::vector<PaperTable2Row> rows{
      {"road-TX", 39.68, 8.10, 8.86}, {"Amazon", 19.62, 4.14, 2.00},
      {"web-GL", 27.98, 9.34, 4.98},  {"com-LJ", 167.76, 25.84, 11.09},
      {"soc-PK", 99.25, 13.34, 5.72}, {"k-n21-16", 42.60, 93.95, 4.47}};
  return rows;
}

const std::vector<PaperFig8Row>& paper_fig8() {
  static const std::vector<PaperFig8Row> rows{
      {"road-TX", 1.36, 1.47, 1.38},  {"Amazon", 4.59, 6.47, 10.51},
      {"web-GL", 5.03, 10.36, 9.27},  {"com-LJ", 5.88, 13.02, 17.55},
      {"soc-PK", 9.97, 21.03, 25.45}, {"k-n21-16", 4.10, 45.88, 53.44}};
  return rows;
}

const std::vector<PaperFig9Row>& paper_fig9() {
  static const std::vector<PaperFig9Row> rows{
      {"k-n21-16", 1.06, 2.18, 21.02}, {"web-GL", 1.49, 1.48, 1.87},
      {"soc-PK", 1.67, 1.65, 2.33},    {"com-LJ", 1.67, 1.46, 2.33},
      {"soc-TW", 1.69, 1.46, 1.96},    {"as-Skt", 1.73, 1.55, 3.33},
      {"soc-LJ", 1.80, 1.37, 2.39},    {"wiki-TK", 1.85, 1.33, 2.12},
      {"com-OK", 2.39, 1.75, 6.22},    {"road-TX", 6.83, 0.0, 0.91}};
  return rows;
}

const std::vector<PaperFig11Row>& paper_fig11() {
  static const std::vector<PaperFig11Row> rows{
      {22, 8, 8.81, 13.53},  {22, 16, 16.78, 22.93}, {22, 32, 21.26, 27.97},
      {22, 64, 35.35, 45.35}, {23, 8, 9.32, 14.82},  {23, 16, 20.60, 31.62},
      {23, 32, 23.65, 34.86}, {23, 64, 38.98, 58.21}, {24, 8, 11.28, 18.45},
      {24, 16, 20.16, 33.09}, {24, 32, 26.23, 40.87}, {24, 64, 40.09, 68.65}};
  return rows;
}

const std::vector<PaperFig12Row>& paper_fig12() {
  static const std::vector<PaperFig12Row> rows{
      {"Amazon", 2.14}, {"road-TX", 1.47}, {"web-GL", 2.30},
      {"com-LJ", 2.35}, {"soc-PK", 2.58},  {"k-n21-16", 1.51}};
  return rows;
}

}  // namespace rdbs::bench
