// google-benchmark integration for the experiment binaries.
//
// Each bench binary computes its experiment results first (the simulator is
// deterministic, so one pass suffices), prints the paper-style table, and
// then registers one google-benchmark entry per measured row whose manual
// iteration time is the *simulated* device time — so the standard benchmark
// output reports exactly the paper's metric.
#pragma once

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common/cli.hpp"

namespace rdbs::bench {

struct GBenchRow {
  std::string name;     // e.g. "table2/RDBS/soc-PK"
  double simulated_ms;  // reported as the iteration time
  double gteps = 0;     // optional rate counter
};

// Registers all rows and runs google-benchmark with the passthrough args.
void run_gbench(const CliArgs& args, const std::vector<GBenchRow>& rows);

}  // namespace rdbs::bench
