#include "bench_support/gbench.hpp"

namespace rdbs::bench {

void run_gbench(const CliArgs& args, const std::vector<GBenchRow>& rows) {
  for (const GBenchRow& row : rows) {
    auto* b = benchmark::RegisterBenchmark(
        row.name.c_str(),
        [row](benchmark::State& state) {
          for (auto _ : state) {
            state.SetIterationTime(row.simulated_ms * 1e-3);
          }
          if (row.gteps > 0) {
            state.counters["GTEPS"] = row.gteps;
          }
          state.counters["sim_ms"] = row.simulated_ms;
        });
    b->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
  }
  std::vector<std::string> argv_storage = args.passthrough();
  std::vector<char*> argv;
  argv.reserve(argv_storage.size());
  for (auto& s : argv_storage) argv.push_back(s.data());
  int argc = static_cast<int>(argv.size());
  benchmark::Initialize(&argc, argv.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
}

}  // namespace rdbs::bench
