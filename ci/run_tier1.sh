#!/usr/bin/env bash
# Tier-1 gate: build + full ctest in both replay configurations, then a
# ThreadSanitizer pass over the parallel-determinism test.
#
#   ci/run_tier1.sh [--asan] [build-root]
#
# Configurations (default run):
#   parallel  -DRDBS_PARALLEL=ON   (default build; OpenMP replay workers)
#   serial    -DRDBS_PARALLEL=OFF  (no OpenMP dependency)
#   tsan      -DRDBS_PARALLEL=ON -fsanitize=thread, runs only
#             test_gpusim_parallel (the suite that exercises the replay
#             workers) — a data race between L1 shards would surface here —
#             plus test_query_batch (batch determinism across concurrent
#             streams with multi-threaded replay), test_fault_injection
#             (gfi chaos sweep: fault bookkeeping must stay race-free when
#             faulted launches replay on multiple workers),
#             test_query_server (serving determinism sweeps: deadlines,
#             admission, breakers over sim_threads {1,8} x streams {1,4}),
#             test_result_cache (result-cache hits, single-flight joins
#             and warm starts interleaved with parallel replay)
#             and test_streaming_soak (10k-query streaming schedule on
#             k-n18: the continuous dispatcher's pending-queue/breaker/
#             aging bookkeeping interleaved with parallel replay).
#
# With --asan, runs ONLY the asan configuration: -DRDBS_ASAN=ON
# (AddressSanitizer + UBSan, -fno-sanitize-recover=all) with the full
# ctest suite. CI runs it as its own job (analysis-asan) so the memory
# gate fails independently of the functional gate.
#
# All configurations build with -DRDBS_WERROR=ON (-Wall -Wextra -Wshadow
# -Werror): a new warning anywhere in the tree fails the gate.
#
# Environment:
#   RDBS_FUZZ_ITERS  differential-fuzz case count (default 50 in the test;
#                    the nightly workflow raises it — see
#                    .github/workflows/ci.yml). Exported to ctest, so it
#                    applies wherever test_fuzz_differential runs.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"

ASAN_ONLY=0
if [[ "${1:-}" == "--asan" ]]; then
  ASAN_ONLY=1
  shift
fi

BUILD_ROOT="${1:-$ROOT/build-ci}"
JOBS="$(nproc 2>/dev/null || echo 2)"

run_config() {
  local name="$1"; shift
  local dir="$BUILD_ROOT/$name"
  echo "=== [$name] configure: $* ==="
  cmake -S "$ROOT" -B "$dir" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DRDBS_WERROR=ON "$@"
  cmake --build "$dir" -j "$JOBS"
  echo "=== [$name] ctest ==="
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

if [[ "$ASAN_ONLY" == 1 ]]; then
  # halt_on_error is the default with -fno-sanitize-recover=all; the
  # detect_* knobs widen coverage beyond the defaults.
  export ASAN_OPTIONS="detect_stack_use_after_return=1:strict_string_checks=1"
  export UBSAN_OPTIONS="print_stacktrace=1"
  run_config asan -DRDBS_PARALLEL=ON -DRDBS_ASAN=ON
  echo "tier-1 (asan): passed"
  exit 0
fi

run_config parallel -DRDBS_PARALLEL=ON

echo "=== [parallel] replay-throughput regression guard ==="
# Two small engine workloads through the full record/replay pipeline with
# 4 replay workers: the overhauled pipeline (fused + compressed traces)
# must stay bit-identical to the seed pipeline and at least match its
# wall-clock (--min-speedup 1.0; the CI host is a single shared core, so
# no parallel-replay headroom is assumed beyond parity). A regression in
# the fused path, the binned L2 scan or the SoA cache shows up here
# before it reaches the nightly full bench.
"$BUILD_ROOT/parallel/bench/gpusim_throughput" --quick --par-threads 4 \
  --min-speedup 1.0 --reps 3 --json /dev/null

echo "=== [parallel] result-cache latency guard ==="
# The cache sweep alone (hot-Zipf schedule, cache on vs off): exact hits
# must be oracle-exact and bit-identical across sim_threads, and the
# cache-hit p50 sojourn must beat the cold p50 — a cache that stops
# hitting, or hits slower than solving, fails the gate here before it
# reaches the nightly full bench.
"$BUILD_ROOT/parallel/bench/server_tail_latency" --cache --json /dev/null

echo "=== [parallel] fault-injection CLI smoke ==="
# The full recovery path end to end through the CLI: deterministic faults,
# checkpoint-resume inside retries, mid-query lane migration, and a
# closed-loop client on a streamed batch. Guards the flag plumbing
# (sssp_tool is how the docs tell people to reproduce fault runs) and
# exits non-zero if the served stream violates its own invariants.
"$BUILD_ROOT/parallel/examples/sssp_tool" --dataset=k-n12-8 --batch \
  --batch-streams=4 --checkpoint-interval=2 --retry-attempts=2 \
  --serve-stream=poisson:n=200,rate=2,deadlines=2/8/-,seed=7 \
  --closed-loop=budget=2,backoff=0.5,depth=8 \
  --inject-faults=seed=7,launch=0.3,max=50 > /dev/null

run_config serial -DRDBS_PARALLEL=OFF

echo "=== [tsan] configure ==="
TSAN_DIR="$BUILD_ROOT/tsan"
cmake -S "$ROOT" -B "$TSAN_DIR" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DRDBS_PARALLEL=ON -DRDBS_WERROR=ON \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -g" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build "$TSAN_DIR" -j "$JOBS" \
  --target test_gpusim_parallel test_query_batch test_fault_injection \
           test_query_server test_result_cache test_streaming_soak
echo "=== [tsan] test_gpusim_parallel ==="
# The two Kronecker engine tests simulate millions of warp tasks and take
# tens of minutes under TSan instrumentation; the road-graph engine tests
# and the direct-simulator tests drive the same parallel replay path.
"$TSAN_DIR/tests/test_gpusim_parallel" --gtest_filter='-*Kron*'
echo "=== [tsan] test_query_batch ==="
# Batch determinism with sim_threads=8 over concurrent streams: races
# between replay workers and the per-stream accounting would surface here.
"$TSAN_DIR/tests/test_query_batch"
echo "=== [tsan] test_fault_injection ==="
# The chaos sweep retries faulted launches whose traces then replay on the
# worker pool; the fault log, poison bookkeeping and recovery accounting
# must stay race-free (and bit-identical — the sweep asserts that too).
"$TSAN_DIR/tests/test_fault_injection"
echo "=== [tsan] test_query_server ==="
# The serving layer's determinism sweep runs the same batch across
# sim_threads {1,8} x streams {1,4}: a race between the admission/breaker
# bookkeeping and the replay workers would break bit-identity here.
"$TSAN_DIR/tests/test_query_server"
echo "=== [tsan] test_result_cache ==="
# Cache hits are served host-side while misses replay on the worker pool;
# single-flight joins and warm-start seeding hand cached vectors to lanes
# that are busy replaying — exactly the sharing TSan should watch.
"$TSAN_DIR/tests/test_result_cache"
echo "=== [tsan] test_streaming_soak ==="
# The streaming soak pushes 10k timed queries through run_stream() while
# the replay pool is live: the golden aggregate doubles as a determinism
# check, and TSan watches the host-serial dispatcher's hand-offs to the
# parallel replay workers.
"$TSAN_DIR/tests/test_streaming_soak"

echo "tier-1: all configurations passed"
