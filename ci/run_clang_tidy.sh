#!/usr/bin/env bash
# clang-tidy gate: run the repo profile (.clang-tidy) over every
# translation unit under src/, using a compile_commands.json exported by
# CMake.
#
#   ci/run_clang_tidy.sh [build-dir]
#
# Environment:
#   CLANG_TIDY   binary to use (default: clang-tidy from PATH; versioned
#                names like clang-tidy-18 work too).
#   TIDY_JOBS    parallel tidy processes (default: nproc).
#
# The script fails fast with a clear message when clang-tidy is not
# installed — the dev container ships only g++; CI installs clang-tidy
# (see .github/workflows/ci.yml job analysis-tidy).
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$ROOT/build-tidy}"
TIDY="${CLANG_TIDY:-clang-tidy}"
JOBS="${TIDY_JOBS:-$(nproc 2>/dev/null || echo 2)}"

if ! command -v "$TIDY" > /dev/null 2>&1; then
  echo "error: '$TIDY' not found on PATH." >&2
  echo "Install clang-tidy (e.g. 'apt-get install clang-tidy') or point" >&2
  echo "CLANG_TIDY at a versioned binary such as clang-tidy-18." >&2
  exit 2
fi

# Configure only — tidy needs the compilation database, not object files.
# Tests/bench/examples are excluded from the tidy sweep (they are covered
# by -Werror and the sanitizer builds), so skip configuring them.
cmake -S "$ROOT" -B "$BUILD_DIR" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
  -DRDBS_ENABLE_TESTS=OFF -DRDBS_ENABLE_BENCH=OFF \
  -DRDBS_ENABLE_EXAMPLES=OFF > /dev/null

mapfile -t SOURCES < <(find "$ROOT/src" -name '*.cpp' | sort)
echo "clang-tidy ($("$TIDY" --version | head -n1)) over ${#SOURCES[@]} files"

# xargs fans the files out; tidy exits non-zero on any WarningsAsErrors
# hit, and xargs propagates the worst exit status.
printf '%s\n' "${SOURCES[@]}" |
  xargs -P "$JOBS" -n 4 "$TIDY" -p "$BUILD_DIR" --quiet

echo "clang-tidy: clean"
