#!/usr/bin/env bash
# Determinism lint: grep-level gate banning constructs that make simulated
# runs (and therefore gsan hazard reports, golden traces and bench
# bit-identity checks) depend on wall-clock time, ambient entropy or
# allocator addresses.
#
#   ci/check_determinism.sh
#
# Scope: src/, bench/ and examples/. Timing for REPORTING is fine
# everywhere (common/timer.hpp wraps steady_clock); what is banned is
# anything that lets wall-clock time, ambient entropy or allocator
# addresses leak into simulated results — bench tables and example output
# are bit-compared across runs just like library traces. Tests stay out
# of scope (gtest itself seeds from the clock under --gtest_shuffle).
#
# Banned:
#   * std::chrono::system_clock       wall clock; steady_clock is fine for
#                                     host-side profiling but never feeds
#                                     simulated time, which is virtual
#   * time(, ctime(, gmtime(, localtime(, gettimeofday(
#                                     C wall-clock APIs
#   * rand(, srand(, random_device   ambient entropy; all randomness must
#                                     flow from an explicit seed
#                                     (common/rng.hpp Xoshiro256)
#   * iterating containers keyed by pointers
#                                     iteration order = allocation order;
#                                     any report or trace built that way
#                                     breaks run-to-run stability
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

fail=0
files=$(find src bench examples -name '*.hpp' -o -name '*.cpp' | sort)

# scan LABEL REGEX — grep each file with // comments stripped (prose like
# "at upload time (cudaMemset)" must not trip the call patterns), printing
# file:line hits. Sets fail=1 when anything matches.
scan() {
  local label="$1" regex="$2" hits="" f
  for f in $files; do
    local found
    found=$(sed 's@//.*@@' "$f" | grep -nE "$regex" | sed "s@^@$f:@" || true)
    [ -n "$found" ] && hits="$hits$found"$'\n'
  done
  if [ -n "$hits" ]; then
    echo "determinism lint: $label" >&2
    printf '%s' "$hits" >&2
    echo >&2
    fail=1
  fi
}

# 1. Wall-clock time. \b guards keep identifiers like elapsed_time_ms legal.
scan "wall-clock time source (simulated time is virtual; use the sim clocks)" \
     'std::chrono::system_clock|\b(time|ctime|gmtime|localtime|gettimeofday)\s*\('

# 2. Ambient entropy. Seeded Xoshiro256 (common/rng.hpp) is the only
# sanctioned randomness; rand()/srand()/std::random_device draw from
# process-global or hardware state and break reproduce-from-seed.
scan "ambient entropy (derive randomness from an explicit seed via common/rng.hpp)" \
     '\b(rand|srand)\s*\(|random_device'

# 3. Pointer-keyed container iteration. A map or set keyed by a pointer
# type iterates in address order — allocator-dependent, different every
# run under ASLR. Matches the key type position of map/set/unordered_map/
# unordered_set declarations.
scan "pointer-keyed container (iteration order follows allocation; key by a stable id instead)" \
     '(std::)?(unordered_)?(map|set)\s*<[^,>]*\*\s*[,>]'

if [ "$fail" -ne 0 ]; then
  echo "determinism lint FAILED — see docs/sanitizer.md, 'Determinism'." >&2
  exit 1
fi
echo "determinism lint: clean ($(echo "$files" | wc -l) files)"
